"""Figure 7 -- per-iteration overhead of the online GP strategy.

Paper: on (b) G5K 2L-6M-6S with 10 repetitions, the first iteration is
longer, the next four are cheap (no GP computation during the initial
design), and from iteration six on the kriging call costs a near
constant 0.04-0.06 s -- negligible against 10-30 s iterations.
Measured: GP-discontinuous running online in the application loop with
wall-clock timing around propose/observe.
"""

import numpy as np
from conftest import emit

from repro.evaluate import figure7
from repro.viz import line_plot


def test_figure7_gp_overhead(benchmark):
    result = benchmark.pedantic(
        figure7, kwargs={"reps": 10, "iterations": 30}, rounds=1, iterations=1
    )

    means = result.mean_per_iteration * 1e3  # ms
    plot = line_plot(
        np.arange(1, len(means) + 1, dtype=float),
        {"overhead [ms]": means},
        x_label="iteration",
    )
    text = (
        f"{plot}\n"
        f"mean overhead per iteration [ms]: "
        f"{np.array2string(means, precision=1)}\n"
        f"steady state (iterations >= 6): "
        f"{result.steady_state_mean * 1e3:.1f} ms per iteration\n"
        f"relative overhead vs iteration durations: "
        f"{result.relative_overhead:.4%} "
        f"(paper: 0.04-0.06 s vs 10-30 s iterations, i.e. < 1%)"
    )
    emit("fig7", text)

    # Shape: early design iterations are cheaper than the steady state,
    # and the overall overhead is negligible.
    early = result.per_iteration[:, 1:5].mean()
    assert early <= result.steady_state_mean + 1e-3
    assert result.relative_overhead < 0.01
