"""Table II -- computational nodes used in the performance evaluation.

Paper: six machine models across Grid'5000 and Santos Dumont, three size
categories each.  Measured: our calibrated catalog (same machines; the
throughput column is this reproduction's calibration).
"""

from conftest import emit

from repro.evaluate import format_table, table2


def test_table2_node_catalog(benchmark):
    rows = benchmark.pedantic(table2, rounds=1, iterations=1)

    text = format_table(
        ["cat", "site", "machine", "CPU", "GPU", "GFlop/s", "NIC Gb/s"],
        [
            [r["category"], r["site"], r["machine"], r["cpu"], r["gpu"],
             f"{r['total_gflops']:.0f}", f"{r['nic_gbps']:.0f}"]
            for r in rows
        ],
    )
    emit("table2", text)

    assert len(rows) == 6
    # Category ordering within each site: L >= M >= S in throughput.
    for site in ("G5K", "SD"):
        speeds = {r["category"]: r["total_gflops"] for r in rows if r["site"] == site}
        assert speeds["L"] >= speeds["M"] >= speeds["S"]
