"""Ablation study -- which GP-discontinuous ingredient buys what.

Not a paper figure, but the paper motivates each ingredient separately
(Section IV-D): the LP bound prunes hopeless configurations, the
LP-residual trend linearizes the learning problem, and the group dummies
absorb the discontinuities.  This bench removes one ingredient at a time
on two discontinuity-heavy scenarios ((i) and (p)) and reports the gain
each variant achieves.
"""

import numpy as np
from conftest import bench_reps, emit

from repro import cached_bank, get_scenario
from repro.evaluate import format_table
from repro.evaluate.runner import run_strategy_once, _baseline_totals
from repro.strategies import AllNodesStrategy, GPDiscontinuousStrategy

VARIANTS = [
    ("full", {}),
    ("no LP bound", {"use_bound": False}),
    ("no group dummies", {"use_dummies": False}),
    ("no LP-residual trend", {"model_residual": False}),
    ("none (plain GP, linear trend)", {
        "use_bound": False, "use_dummies": False, "model_residual": False,
    }),
]


def _evaluate_variant(bank, kwargs, reps, iterations=127):
    space = bank.action_space()
    totals = []
    for rep in range(reps):
        rng = np.random.default_rng((rep, 0xAB1A))
        strategy = GPDiscontinuousStrategy(space, seed=rep, **kwargs)
        totals.append(run_strategy_once(strategy, bank, iterations, rng))
    return float(np.mean(totals))


def test_ablation_gp_discontinuous(benchmark):
    reps = max(4, bench_reps() // 2)
    banks = {key: cached_bank(get_scenario(key)) for key in ("i", "p")}

    def run_all():
        out = {}
        for key, bank in banks.items():
            baseline = float(np.mean(
                _baseline_totals(AllNodesStrategy, bank, 127, reps, 0)
            ))
            out[key] = {
                name: (baseline - _evaluate_variant(bank, kwargs, reps))
                / baseline * 100.0
                for name, kwargs in VARIANTS
            }
        return out

    gains = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name] + [f"{gains[key][name]:+.1f}%" for key in sorted(gains)]
        for name, _ in VARIANTS
    ]
    text = format_table(["variant"] + [f"({k}) gain" for k in sorted(gains)], rows)
    emit("ablation", text)

    # The full version is not dominated by the fully-ablated one.
    for key in gains:
        assert gains[key]["full"] >= gains[key][VARIANTS[-1][0]] - 3.0
