"""Regret analysis -- quantifying Table I's "Fast" column.

Not a paper figure, but it substantiates the bandit framing of Section
IV-C on a real scenario: cumulative regret against the clairvoyant best
configuration, and the iteration at which each strategy's average
instantaneous regret permanently drops below 10 % of the optimum.
"""

from conftest import emit

from repro import cached_bank, get_scenario
from repro.evaluate import convergence_table, format_table, regret_curves


def test_regret_convergence(benchmark):
    bank = cached_bank(get_scenario("b"))

    curves = benchmark.pedantic(
        regret_curves,
        args=(bank, ("DC", "Right-Left", "Brent", "UCB", "UCB-struct",
                     "GP-UCB", "GP-discontinuous")),
        kwargs={"iterations": 127, "reps": 8},
        rounds=1, iterations=1,
    )

    rows = convergence_table(curves)
    text = format_table(
        ["strategy", "cumulative regret [s]", "convergence iteration"],
        [[r["strategy"], f"{r['cumulative_regret']:.1f}",
          r["convergence_iteration"]] for r in rows],
    )
    marks = []
    for name in ("GP-discontinuous", "UCB"):
        cum = curves[name].cumulative
        marks.append(
            f"{name}: regret after 20 iters {cum[19]:.1f} s, "
            f"after 127 iters {cum[-1]:.1f} s"
        )
    emit("regret", text + "\n\n" + "\n".join(marks))

    # UCB's forced sweep gives it more early regret than GP-discontinuous.
    assert (
        curves["GP-discontinuous"].cumulative[30]
        <= curves["UCB"].cumulative[30]
    )
    # GP-discontinuous regret flattens: second-half increment smaller.
    cum = curves["GP-discontinuous"].cumulative
    assert cum[-1] - cum[63] < cum[63] - cum[0]
