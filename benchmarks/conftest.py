"""Shared fixtures for the benchmark harness.

Every table and figure of the paper has one ``bench_*.py`` file.  Run

    pytest benchmarks/ --benchmark-only

Each bench regenerates the paper's rows/series, prints them, and writes
them to ``benchmarks/out/``.  Absolute numbers come from our simulator
calibration, not the authors' testbed; the *shape* (who wins, by roughly
what factor, where the crossovers fall) is what is being reproduced --
see EXPERIMENTS.md for the paper-vs-measured record.

Environment knobs
-----------------
``REPRO_BENCH_REPS``
    Repetitions for the Figure 6 evaluation (default 10; the paper uses
    30 -- set 30 for the full protocol).
``REPRO_TILES_101`` / ``REPRO_TILES_128``
    Tile counts of the workloads (higher = closer to the paper's 101/128
    grids, slower sweeps).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

OUT_DIR = Path(__file__).parent / "out"


def bench_reps() -> int:
    return int(os.environ.get("REPRO_BENCH_REPS", "10"))


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/out/."""
    print(f"\n{'=' * 78}\n{name}\n{'=' * 78}\n{text}")
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture(scope="session")
def figure5_banks_session():
    """All 16 scenario banks (built once, cached on disk)."""
    from repro.evaluate import figure5_banks

    return figure5_banks(progress=True, include_rigid=True)


@pytest.fixture(scope="session")
def figure6_evaluations(figure5_banks_session):
    """Full Figure 6 evaluation, shared by bench_fig6 and bench_table1."""
    from repro.evaluate import figure6

    return figure6(
        banks=figure5_banks_session, reps=bench_reps(), progress=True
    )
