"""The strategies the paper tried and refrained from reporting.

Section IV-B: Stochastic Approximation and Simulated Annealing "achieved
bad results because they are not parsimonious".  This bench reproduces
that finding on two scenarios: both spend their 127-iteration budget on
random perturbations / gradient probes and end up far behind
GP-discontinuous (and usually behind the all-nodes baseline's
competitors).
"""

import numpy as np
from conftest import bench_reps, emit

from repro import cached_bank, get_scenario
from repro.evaluate import format_table, gain_percent
from repro.evaluate.runner import _baseline_totals, run_strategy_once
from repro.strategies import (
    AllNodesStrategy,
    GPDiscontinuousStrategy,
    SimulatedAnnealingStrategy,
    StochasticApproximationStrategy,
)

CONTENDERS = [
    ("GP-discontinuous", GPDiscontinuousStrategy),
    ("SANN", SimulatedAnnealingStrategy),
    ("StochasticApprox", StochasticApproximationStrategy),
]


def test_discarded_strategies_not_parsimonious(benchmark):
    reps = max(4, bench_reps() // 2)
    banks = {key: cached_bank(get_scenario(key)) for key in ("b", "i")}

    def run_all():
        out = {}
        for key, bank in banks.items():
            space = bank.action_space()
            baseline = float(np.mean(
                _baseline_totals(AllNodesStrategy, bank, 127, reps, 0)
            ))
            gains = {}
            for name, cls in CONTENDERS:
                totals = []
                for rep in range(reps):
                    rng = np.random.default_rng((rep, 0xD15C))
                    totals.append(run_strategy_once(
                        cls(space, seed=rep), bank, 127, rng
                    ))
                gains[name] = gain_percent(baseline, float(np.mean(totals)))
            out[key] = gains
        return out

    gains = benchmark.pedantic(run_all, rounds=1, iterations=1)

    rows = [
        [name] + [f"{gains[k][name]:+.1f}%" for k in sorted(gains)]
        for name, _ in CONTENDERS
    ]
    text = format_table(["strategy"] + [f"({k}) gain" for k in sorted(gains)], rows)
    text += (
        "\n\npaper: SANN and Stochastic Approximation 'achieved bad results "
        "because they are not parsimonious' (Section IV-B, unreported)."
    )
    emit("discarded", text)

    # Averaged over scenarios the stochastic searches lose clearly (a
    # lucky run on one smooth curve is possible -- noise, not parsimony).
    def avg(name):
        return float(np.mean([gains[k][name] for k in gains]))

    assert avg("GP-discontinuous") > avg("SANN") + 5.0
    assert avg("GP-discontinuous") > avg("StochasticApprox") + 5.0
    # On the discontinuous scenario (i) both baselines trail badly.
    assert gains["i"]["GP-discontinuous"] > gains["i"]["SANN"] + 10.0
    assert gains["i"]["GP-discontinuous"] > gains["i"]["StochasticApprox"] + 10.0
