"""Figure 4 -- step-by-step GP exploration/exploitation.

Paper: (A) GP-UCB converges quickly on the small smooth scenario (b);
(B) GP-UCB on (i) is misled by discontinuities and ends up exploring
everything; (C) GP-discontinuous on (i) finds the optimum while skipping
most of the right zone.
Measured: the same three replays; asserts GP-discontinuous explores
fewer distinct configurations than GP-UCB on (i) while concentrating its
choices near the bank's optimum.
"""

from conftest import emit

from repro import cached_bank, get_scenario
from repro.evaluate import figure4_snapshots


def _render(snapshots, bank, title):
    lines = [title]
    for snap in snapshots:
        chosen = " ".join(f"{n}:{c}" for n, c in sorted(snap.counts.items()))
        lines.append(
            f"  iteration {snap.iteration:>3}: next action n = "
            f"{snap.next_action:>3} | times each n was selected: {chosen}"
        )
    most = max(snapshots[-1].counts, key=snapshots[-1].counts.get)
    lines.append(
        f"  most-selected configuration: n = {most} "
        f"(bank optimum n = {bank.best_action()})"
    )
    return "\n".join(lines), most, snapshots[-1].counts


def test_figure4_step_by_step(benchmark):
    bank_b = cached_bank(get_scenario("b"))
    bank_i = cached_bank(get_scenario("i"))

    def replay():
        return (
            figure4_snapshots(bank_b, "GP-UCB", iterations=(5, 8, 20, 100)),
            figure4_snapshots(bank_i, "GP-UCB", iterations=(8, 20, 100)),
            figure4_snapshots(bank_i, "GP-discontinuous", iterations=(8, 20, 100)),
        )

    snaps_a, snaps_b, snaps_c = benchmark.pedantic(replay, rounds=1, iterations=1)

    text_a, most_a, _ = _render(snaps_a, bank_b, "(A) GP-UCB on G5K 2L-6M-6S 101")
    text_b, _, counts_b = _render(snaps_b, bank_i, "(B) GP-UCB on G5K 6L-30S 101")
    text_c, most_c, counts_c = _render(
        snaps_c, bank_i, "(C) GP-discontinuous on G5K 6L-30S 101"
    )
    emit("fig4", "\n\n".join([text_a, text_b, text_c]))

    # (A): converges near the optimum of the small scenario.
    assert abs(most_a - bank_b.best_action()) <= 2
    # (C) explores no more of the space than (B) and lands near the optimum.
    assert len(counts_c) <= len(counts_b)
    assert abs(most_c - bank_i.best_action()) <= 2
