"""Figure 5 -- duration vs factorization nodes, all 16 scenarios.

Paper: every shape family appears -- smooth convex curves (a, b, e, f,
m), group-boundary discontinuities (d, g, h, k, l, n, o, p), and small
distribution breaks (c, e, f, g, i, j, p); using all nodes for all
phases is sub-optimal in (almost) all cases.  The yellow line is the
rigid n_gen = n_fact policy.
Measured: the same 16 sweeps with LP and rigid lines; asserts all-nodes
is sub-optimal in at least 14/16 scenarios.
"""

from conftest import emit

from repro.evaluate import sweep_table


def test_figure5_all_scenarios(benchmark, figure5_banks_session):
    banks = benchmark.pedantic(
        lambda: figure5_banks_session, rounds=1, iterations=1
    )

    blocks, suboptimal = [], 0
    for key in sorted(banks):
        bank = banks[key]
        best = bank.best_action()
        n = bank.n_total
        if bank.mean(best) < bank.mean(n) - 1e-9:
            suboptimal += 1
        blocks.append(
            sweep_table(bank)
            + f"\n  best n = {best} ({bank.mean(best):.1f} s), all-nodes "
            f"{bank.mean(n):.1f} s, oracle gain "
            f"{(bank.mean(n) - bank.mean(best)) / bank.mean(n) * 100:.1f}%"
        )
    blocks.append(
        f"scenarios where all-nodes is sub-optimal: {suboptimal}/16 "
        f"(paper: all cases shown are sub-optimal at n = N)"
    )
    emit("fig5", "\n\n".join(blocks))

    assert suboptimal >= 14
    # LP is a lower bound everywhere.
    for bank in banks.values():
        assert all(bank.lp[a] <= bank.true_means[a] + 1e-9 for a in bank.actions)
