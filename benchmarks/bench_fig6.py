"""Figure 6 -- the seven strategies on the sixteen scenarios.

Paper (headline results): GP-discontinuous performs well in *all*
scenarios with up to 51.2 % gain over all-nodes ((p)) and at worst about
-1 % where all-nodes is already optimal; UCB-struct is strong almost
everywhere but misses in-group optima ((a), (e), (j)); UCB and
Right-Left are poor in more than half the scenarios; DC/Brent are good
on smooth curves but fooled by noise and discontinuities.
Measured: the same protocol (127 iterations per run, resampled bank,
REPRO_BENCH_REPS repetitions; paper uses 30).
"""

import numpy as np
from conftest import bench_reps, emit

from repro.evaluate import evaluation_table, figure6_matrix


def test_figure6_strategy_comparison(benchmark, figure6_evaluations):
    evaluations = benchmark.pedantic(
        lambda: figure6_evaluations, rounds=1, iterations=1
    )

    blocks = [f"repetitions per strategy: {bench_reps()} (paper: 30)"]
    blocks.append(figure6_matrix(evaluations))
    for key in sorted(evaluations):
        blocks.append(evaluation_table(evaluations[key]))

    gpd = [ev.summary("GP-discontinuous") for ev in evaluations.values()]
    best_gain = max(s.gain_pct for s in gpd)
    worst_gain = min(s.gain_pct for s in gpd)
    blocks.append(
        f"GP-discontinuous: best gain {best_gain:+.1f}% "
        f"(paper: up to +51.2%), worst {worst_gain:+.1f}% (paper: > -1%)"
    )
    emit("fig6", "\n\n".join(blocks))

    # Headline shapes:
    # 1. GP-discontinuous is never catastrophic and often strongly positive.
    assert worst_gain > -10.0
    assert best_gain > 20.0
    # 2. On average GP-discontinuous beats the generic strategies.
    def avg_gain(name):
        return float(np.mean([ev.summary(name).gain_pct for ev in evaluations.values()]))

    gpd_avg = avg_gain("GP-discontinuous")
    for weaker in ("UCB", "Right-Left", "DC", "Brent"):
        assert gpd_avg > avg_gain(weaker), weaker
    # 3. UCB explores so much it loses to GP-discontinuous on big spaces.
    assert (
        evaluations["p"].summary("GP-discontinuous").mean_total
        < evaluations["p"].summary("UCB").mean_total
    )
