"""Figure 1 -- three iterations of ExaGeoStat with phase overlap.

Paper: iteration 1 uses few homogeneous nodes for both phases; iteration
2 all (CPU-heavy) nodes for both; iteration 3 all nodes for generation
and only the eight fast nodes for factorization -- the best makespan.
Measured: the same three plans on the simulated G5K cluster; the bench
asserts iteration 3 wins and prints the per-node utilization timelines.
"""

from conftest import emit

from repro.evaluate import figure1


def test_figure1_three_iterations(benchmark):
    result = benchmark.pedantic(figure1, args=("b",), rounds=1, iterations=1)

    lines = []
    for desc, art, makespan in zip(
        result.descriptions, result.timelines, result.makespans
    ):
        lines.append(f"{desc}\n  makespan: {makespan:.2f} s\n{art}\n")
    best = min(range(3), key=lambda i: result.makespans[i])
    lines.append(
        f"paper: iteration 3 (all nodes generate, fast subset factorizes) "
        f"is fastest\nmeasured: iteration {best + 1} is fastest "
        f"({result.makespans[best]:.2f} s vs "
        f"{max(result.makespans):.2f} s worst)"
    )
    emit("fig1", "\n".join(lines))

    # Shape assertions: the restricted-factorization plan wins, and the
    # phases overlap in the all-nodes iteration.
    assert best == 2
    spans = result.phase_spans[1]
    assert spans["factorization"][0] < spans["generation"][1]
