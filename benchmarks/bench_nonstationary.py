"""Non-stationary adaptation -- the paper's future work, implemented.

Section VIII: "further investigation is required to propose or adapt the
GP strategies to non-stationary scenarios".  This bench builds a
drifting platform from two real scenario banks ((i)'s behaviour suddenly
degraded by a factor emulating network sharing) and compares the frozen
GP-discontinuous with the sliding-window variant.
"""

import numpy as np
from conftest import emit

from repro import cached_bank, get_scenario
from repro.measure import DriftingBank, MeasurementBank
from repro.strategies import (
    GPDiscontinuousStrategy,
    WindowedGPDiscontinuousStrategy,
)


def degraded(bank: MeasurementBank, factor: float = 2.0) -> MeasurementBank:
    """A regime where the fast (few-node) configurations degrade.

    Models e.g. the fastest nodes being shared with another job: small
    configurations slow down by ``factor``, the all-nodes end is barely
    affected -- so the optimum *moves right* and a frozen model keeps
    exploiting a stale optimum.
    """
    actions = bank.actions
    lo, hi = actions[0], actions[-1]

    def scale(n):
        return factor - (factor - 1.0) * (n - lo) / max(hi - lo, 1)

    return MeasurementBank(
        label=bank.label + " degraded",
        actions=actions,
        samples={n: bank.samples[n] * scale(n) for n in actions},
        lp=dict(bank.lp),
        group_boundaries=bank.group_boundaries,
        true_means={n: bank.true_means[n] * scale(n) for n in actions},
    )


def total_after_switch(strategy_cls, drift, iterations, switch, reps=8):
    totals = []
    for rep in range(reps):
        drift.reset()
        rng = np.random.default_rng((rep, 0xD21F7))
        strategy = strategy_cls(drift.action_space(), seed=rep)
        late = 0.0
        for it in range(iterations):
            n = strategy.propose()
            y = drift.resample(n, rng)
            strategy.observe(n, y)
            if it >= switch:
                late += y
        totals.append(late)
    return float(np.mean(totals))


def test_nonstationary_windowed_adaptation(benchmark):
    bank = cached_bank(get_scenario("i"))
    after = degraded(bank)
    switch, horizon = 60, 160

    def run():
        out = {}
        for cls, label in (
            (GPDiscontinuousStrategy, "frozen GP-discontinuous"),
            (WindowedGPDiscontinuousStrategy, "windowed GP-discontinuous"),
        ):
            drift = DriftingBank(bank, after, switch_at=switch)
            out[label] = total_after_switch(cls, drift, horizon, switch)
        # Clairvoyant post-switch reference.
        best_after = after.best_action()
        out["oracle (new regime)"] = after.mean(best_after) * (horizon - switch)
        return out

    totals = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"regime switch at iteration {switch} of {horizon}",
             f"new-regime optimum: n = {after.best_action()}"]
    for label, total in totals.items():
        lines.append(f"  {label:<28} post-switch total {total:9.1f} s")
    emit("nonstationary", "\n".join(lines))

    # The windowed variant should not be worse than the frozen one after
    # the drift (and both should beat doing nothing only modestly; the
    # oracle bounds from below).
    assert totals["windowed GP-discontinuous"] <= totals["frozen GP-discontinuous"] * 1.05
    assert totals["windowed GP-discontinuous"] >= totals["oracle (new regime)"] * 0.98
