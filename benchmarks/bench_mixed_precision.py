"""Mixed-precision trade-off -- the paper's future work, implemented.

Section VIII: "ExaGeoStat can run the factorization with mixed precision
blocks.  The application could dynamically adjust the number of
diagonals that use each precision in a trade-off between accuracy and
performance."  This bench produces that frontier on scenario (c): the
number of double-precision diagonals versus (a) the real-numerics
log-likelihood error and (b) the simulated iteration time.
"""

from conftest import emit

from repro.evaluate import format_table
from repro.geostat import mixed_precision_tradeoff
from repro.workload import Workload


def test_mixed_precision_frontier(benchmark):
    t = Workload.from_name("128").t
    bands = sorted({1, 2, 4, max(2, t // 4), max(3, t // 2), t})

    rows = benchmark.pedantic(
        mixed_precision_tradeoff,
        args=(bands,),
        kwargs={"scenario_key": "c", "n_points": 64, "seed": 1},
        rounds=1, iterations=1,
    )

    text = format_table(
        ["dp diagonals", "dp tile fraction", "loglik error", "iteration [s]"],
        [[r.dp_bands, f"{r.dp_fraction:.2f}", f"{r.loglik_error:.2e}",
          f"{r.iteration_time:.2f}"] for r in rows],
    )
    speedup = rows[-1].iteration_time / rows[0].iteration_time
    text += (
        f"\n\nall-SP-off-diagonal speedup vs full DP: {speedup:.2f}x "
        f"at loglik error {rows[0].loglik_error:.2e}"
    )
    emit("mixed_precision", text)

    # Frontier shape: full DP is exact and slowest; fewer DP diagonals
    # are faster and (weakly) less accurate.
    assert rows[-1].loglik_error == 0.0
    assert rows[0].iteration_time < rows[-1].iteration_time
    assert rows[0].loglik_error >= rows[-1].loglik_error
    assert speedup > 1.1
