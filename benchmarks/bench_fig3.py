"""Figure 3 -- GP fit over cos with eight measurements.

Paper: the GP mean tracks cos near measurements, the 95 % region covers
the truth elsewhere, and the next UCB point targets the most promising
uncertain region.
Measured: identical setup with our universal-kriging implementation.
"""

import numpy as np
from conftest import emit

from repro.evaluate import figure3
from repro.viz import line_plot


def test_figure3_cos_fit(benchmark):
    result = benchmark.pedantic(figure3, rounds=1, iterations=1)

    sub = slice(None, None, 8)
    plot = line_plot(
        result.grid[sub],
        {
            "gp mean": result.mean[sub],
            "truth cos": result.truth[sub],
            "upper95": (result.mean + 1.96 * result.sd)[sub],
            "lower95": (result.mean - 1.96 * result.sd)[sub],
        },
        x_label="x (0 .. 4 pi)",
    )
    text = (
        f"{plot}\n"
        f"observations at x = {np.round(result.x_obs, 2).tolist()}\n"
        f"95% CI coverage of the true cos: {result.coverage_95:.1%} "
        f"(paper: truth lies in the band)\n"
        f"next point (UCB argmax): x = {result.next_point:.2f}"
    )
    emit("fig3", text)

    assert result.coverage_95 > 0.85
    # The mean interpolates at observation sites.
    idx = [int(np.argmin(np.abs(result.grid - x))) for x in result.x_obs]
    assert np.allclose(result.mean[idx], np.cos(result.grid[idx]), atol=0.05)
