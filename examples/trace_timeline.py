#!/usr/bin/env python
"""Figure 1 in your terminal: three iterations, phase overlap, timelines.

Replays the paper's Figure 1 on a simulated G5K cluster: the first
iteration uses a small homogeneous subset for both phases, the second all
nodes for both, and the third all nodes for generation but only the
fastest nodes for the factorization -- the configuration that wins.

Run:  python examples/trace_timeline.py
"""

from repro.evaluate import figure1


def main() -> None:
    result = figure1("b")
    for desc, art, spans, makespan in zip(
        result.descriptions, result.timelines, result.phase_spans, result.makespans
    ):
        print("=" * 78)
        print(desc)
        print(f"iteration makespan: {makespan:.2f} s")
        for phase, (start, end) in sorted(spans.items(), key=lambda kv: kv[1]):
            print(f"  {phase:<14} {start:7.2f} .. {end:7.2f} s")
        print(art)
        print()
    best = min(range(3), key=lambda i: result.makespans[i])
    print(f"fastest: iteration {best + 1} -- restricting the factorization "
          f"to the fast nodes wins, as in the paper's Figure 1.")


if __name__ == "__main__":
    main()
