#!/usr/bin/env python
"""Full pipeline: real geostatistics + online node-count adaptation.

Reproduces ExaGeoStat's actual job at a laptop-friendly scale: sample a
spatial dataset from a known Matern model, then maximize the Gaussian
log-likelihood over the range parameter theta -- each likelihood
evaluation runs the real five-phase pipeline (generate Sigma_theta, tile
Cholesky, solve, determinant, dot product) -- while the *platform-scale*
iteration durations are simulated and fed to the GP-discontinuous
strategy, exactly like the paper's online implementation.

Run:  python examples/geostat_likelihood.py
"""

import numpy as np

from repro import ExaGeoStat, Workload, get_scenario
from repro.evaluate import strategy_space_for
from repro.geostat import MaternParams, make_covariance, synthetic_dataset
from repro.strategies import GPDiscontinuousStrategy

TRUE_RANGE = 0.15
N_POINTS = 100
ITERATIONS = 25


def main() -> None:
    # 1. Synthetic spatial data from a known Matern model.
    params = MaternParams(variance=1.0, range_=TRUE_RANGE,
                          smoothness=0.5, nugget=1e-4)
    data = synthetic_dataset(N_POINTS, make_covariance(params), seed=3)
    print(f"dataset: {data.n} observations, true range = {TRUE_RANGE}")

    # 2. Platform + application.
    scenario = get_scenario("b")
    cluster = scenario.build_cluster()
    app = ExaGeoStat(cluster, Workload.from_name(scenario.workload), seed=0)
    strategy = GPDiscontinuousStrategy(strategy_space_for(scenario), seed=0)

    # 3. Main loop: theta search + adaptive node counts.
    result = app.run_with_likelihood(
        strategy, data, theta_lo=0.02, theta_hi=0.8, iterations=ITERATIONS
    )

    print(f"\n{'iter':>4} {'theta':>8} {'loglik':>10} {'n_fact':>6} {'time[s]':>8}")
    for r in result.records:
        print(f"{r.index:>4} {r.theta:>8.4f} {r.log_likelihood:>10.2f} "
              f"{r.n_fact:>6} {r.duration:>8.2f}")

    best = max(result.records, key=lambda r: r.log_likelihood)
    print(f"\nestimated range: {best.theta:.4f} (true {TRUE_RANGE})")
    assert abs(best.theta - TRUE_RANGE) < 0.15, "theta search diverged"

    total = result.total_time
    all_nodes = app.measure(len(cluster)) * ITERATIONS
    print(f"simulated campaign time: {total:.1f} s "
          f"(all-nodes policy would need ~{all_nodes:.1f} s)")
    print(f"strategy overhead: {result.total_overhead * 1e3:.1f} ms total")


if __name__ == "__main__":
    main()
