#!/usr/bin/env python
"""Quickstart: let ExaGeoStat learn its best node count online.

Builds the paper's scenario (b) -- a Grid'5000 cluster with 2 large,
6 medium and 6 small nodes -- and runs the iterative application twice:

* with the standard policy (all 14 nodes for every phase), and
* with the proposed GP-discontinuous strategy choosing the number of
  factorization nodes online.

Run:  python examples/quickstart.py
"""

from repro import ExaGeoStat, Workload, get_scenario
from repro.evaluate import strategy_space_for
from repro.measure import for_mode
from repro.strategies import GPDiscontinuousStrategy

ITERATIONS = 40


def main() -> None:
    scenario = get_scenario("b")
    print(f"scenario: {scenario.full_label}")
    cluster = scenario.build_cluster()
    workload = Workload.from_name(scenario.workload)
    noise = for_mode(scenario.mode)

    app = ExaGeoStat(
        cluster, workload, noise=lambda d, rng: noise.sample(d, rng), seed=1
    )

    baseline = app.run_fixed(len(cluster), ITERATIONS)
    print(f"\nall-nodes policy: total {baseline.total_time:8.1f} s "
          f"over {ITERATIONS} iterations")

    app2 = ExaGeoStat(
        cluster, workload, noise=lambda d, rng: noise.sample(d, rng), seed=1
    )
    strategy = GPDiscontinuousStrategy(strategy_space_for(scenario), seed=1)
    adaptive = app2.run(strategy, ITERATIONS)
    print(f"GP-discontinuous: total {adaptive.total_time:8.1f} s "
          f"(overhead {adaptive.total_overhead * 1e3:.1f} ms)")

    gain = (baseline.total_time - adaptive.total_time) / baseline.total_time
    print(f"gain vs all nodes: {gain:+.1%}")

    print("\nnode counts chosen per iteration:")
    counts = adaptive.chosen_counts
    print("  " + " ".join(f"{n:2d}" for n in counts[:20]))
    print("  " + " ".join(f"{n:2d}" for n in counts[20:]))
    print(f"\nconverged on n = {counts[-1]} factorization nodes "
          f"(of {len(cluster)}); best known = "
          f"{min(set(counts), key=lambda n: app2.measure(n))}")


if __name__ == "__main__":
    main()
