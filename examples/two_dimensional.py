#!/usr/bin/env python
"""Future work, implemented: learning BOTH phase node counts online.

The paper's Figure 8 shows that on (f) G5K 2L-6M-15S 128 the generation
phase should also give up nodes: 10 generation + 8 factorization nodes
beat the best all-generation configuration.  This example runs the 2-D
GP strategy over (n_gen, n_fact) pairs and compares what it finds with
the exhaustive 2-D sweep.

Run:  python examples/two_dimensional.py
"""

import numpy as np

from repro import ExaGeoStat, Workload, get_scenario
from repro.distribution import LPBoundCalculator
from repro.measure import for_mode
from repro.strategies import GP2DStrategy
from repro.viz import heatmap

SCENARIO = "f"
ITERATIONS = 40


def main() -> None:
    scenario = get_scenario(SCENARIO)
    cluster = scenario.build_cluster()
    workload = Workload.from_name(scenario.workload)
    print(f"scenario: {scenario.full_label} ({len(cluster)} nodes)")

    lp = LPBoundCalculator(cluster, workload)
    lo = max(2, cluster.min_nodes_for(workload.matrix_bytes))
    counts = list(range(lo, len(cluster) + 1, 2))
    if counts[-1] != len(cluster):
        counts.append(len(cluster))

    # Exhaustive reference (what Figure 8 plots).
    app = ExaGeoStat(cluster, workload)
    grid = np.array(
        [[app.measure(f, g) for f in counts] for g in counts]
    )
    print("\nexhaustive 2-D sweep (rows n_gen, cols n_fact, dark = fast):")
    print(heatmap(grid, row_labels=counts, col_labels=counts))
    gi, fi = np.unravel_index(np.argmin(grid), grid.shape)
    print(f"sweep optimum: n_gen={counts[gi]}, n_fact={counts[fi]} "
          f"({grid[gi, fi]:.2f} s); all-nodes {grid[-1, -1]:.2f} s")

    # Online 2-D adaptation.
    noise = for_mode(scenario.mode)
    app2 = ExaGeoStat(cluster, workload,
                      noise=lambda d, rng: noise.sample(d, rng), seed=0)
    pairs = [(g, f) for g in counts for f in counts]
    strategy = GP2DStrategy(
        pairs=pairs, n_total=len(cluster),
        lp_bound=lambda g, f: max(lp.generation(g), lp.fact(f)),
        seed=0,
    )
    result = app2.run2d(strategy, ITERATIONS)
    best = strategy.best_observed()
    print(f"\nGP-2D after {ITERATIONS} iterations: best observed pair "
          f"(n_gen, n_fact) = {best}")
    print(f"pairs tried: {len(strategy._stats)} of {len(pairs)} "
          f"({len(pairs) - len(strategy.allowed_pairs())} pruned by the LP bound)")
    print(f"duration at GP-2D's pair: {app.measure(best[1], best[0]):.2f} s "
          f"(sweep optimum {grid[gi, fi]:.2f} s, all-nodes {grid[-1, -1]:.2f} s)")


if __name__ == "__main__":
    main()
