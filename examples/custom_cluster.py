#!/usr/bin/env python
"""Bring your own machines: adaptive node selection on a custom cluster.

Shows the public API end-to-end on hardware that is *not* in the paper:
define node types, compose a heterogeneous cluster, pick a workload,
compute LP bounds, sweep the configuration space, and let the strategy
find the sweet spot.

Run:  python examples/custom_cluster.py
"""

import numpy as np

from repro import ExaGeoStat, Workload
from repro.distribution import LPBoundCalculator
from repro.geostat import IterationPlan
from repro.platform import Cluster, NetworkModel, NodeType
from repro.strategies import ActionSpace, GPDiscontinuousStrategy

# A fictional cloud offering: fat GPU nodes, medium GPU nodes, CPU nodes.
FAT = NodeType(
    name="fat-gpu", site="SD", category="L",
    cpu_desc="2x 32-core EPYC", gpu_desc="4x A100",
    cpu_gflops=2000.0, gpus=4, gpu_gflops=9000.0,
    nic_gbps=100.0, memory_gb=96.0,
)
MID = NodeType(
    name="mid-gpu", site="SD", category="M",
    cpu_desc="1x 32-core EPYC", gpu_desc="1x A100",
    cpu_gflops=1000.0, gpus=1, gpu_gflops=9000.0,
    nic_gbps=100.0, memory_gb=48.0,
)
CPU_ONLY = NodeType(
    name="cpu", site="SD", category="S",
    cpu_desc="2x 24-core Xeon", gpu_desc="",
    cpu_gflops=1500.0, gpus=0, gpu_gflops=0.0,
    nic_gbps=50.0, memory_gb=48.0,
)


def main() -> None:
    cluster = Cluster(
        [(FAT, 3), (MID, 6), (CPU_ONLY, 12)],
        network=NetworkModel(latency_s=5e-6, efficiency=0.9, streams=2),
        name="my-cloud 3L-6M-12S",
    )
    workload = Workload(name="128", t=32, nb=3840)
    print(f"cluster: {cluster.name}, {len(cluster)} nodes, "
          f"{cluster.total_gflops() / 1e3:.1f} TFlop/s aggregate")
    print(f"workload: {workload}")

    lp = LPBoundCalculator(cluster, workload)
    app = ExaGeoStat(cluster, workload)

    print(f"\n{'n':>3} {'LP bound':>9} {'simulated':>10}")
    lo = max(2, cluster.min_nodes_for(workload.matrix_bytes))
    durations = {}
    for n in range(lo, len(cluster) + 1):
        result = app.simulate(IterationPlan(n_fact=n, n_gen=len(cluster)))
        durations[n] = result.makespan
        print(f"{n:>3} {lp.iteration(n):>9.2f} {durations[n]:>10.2f}")

    best = min(durations, key=durations.get)
    print(f"\nbest configuration: n = {best} "
          f"({durations[best]:.2f} s vs {durations[len(cluster)]:.2f} s "
          f"with all nodes)")

    # Online adaptation finds it without sweeping.
    space = ActionSpace.from_cluster(cluster, lo=lo, lp_bound=lp)
    strategy = GPDiscontinuousStrategy(space, seed=0)
    rng = np.random.default_rng(0)
    app2 = ExaGeoStat(cluster, workload,
                      noise=lambda d, r: d + r.normal(0, 0.5), seed=0)
    run = app2.run(strategy, 30)
    print(f"GP-discontinuous converged on n = {run.chosen_counts[-1]} "
          f"after 30 iterations; it tried "
          f"{len(set(run.chosen_counts))} distinct configurations "
          f"(a full sweep needs {len(space)}).")


if __name__ == "__main__":
    main()
