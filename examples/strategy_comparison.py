#!/usr/bin/env python
"""Compare all seven exploration strategies on one scenario.

A miniature of the paper's Figure 6 protocol: sweep scenario (i)
G5K 6L-30S once (cached), then evaluate every strategy by resampling
from the bank, and render the scenario's duration-vs-nodes curve in
ASCII together with the gains table.

Run:  python examples/strategy_comparison.py [scenario-key] [reps]
"""

import sys

import numpy as np

from repro import cached_bank, get_scenario
from repro.evaluate import evaluate_scenario, evaluation_table
from repro.viz import line_plot


def main() -> None:
    key = sys.argv[1] if len(sys.argv) > 1 else "i"
    reps = int(sys.argv[2]) if len(sys.argv) > 2 else 10
    scenario = get_scenario(key)
    print(f"sweeping {scenario.full_label} (cached after the first run)...")
    bank = cached_bank(scenario, progress=True)

    x = np.asarray(bank.actions, dtype=float)
    print("\niteration duration vs number of factorization nodes:")
    print(
        line_plot(
            x,
            {
                "measured": np.array([bank.mean(n) for n in bank.actions]),
                "LP bound": np.array([bank.lp[n] for n in bank.actions]),
            },
            x_label="number of factorization nodes",
            y_label="iteration time [s]",
        )
    )
    print(f"\nbest configuration: n = {bank.best_action()} "
          f"({bank.mean(bank.best_action()):.1f} s vs "
          f"{bank.mean(bank.n_total):.1f} s with all {bank.n_total} nodes)")

    print(f"\nevaluating 7 strategies x {reps} repetitions x 127 iterations...")
    evaluation = evaluate_scenario(bank, reps=reps)
    print()
    print(evaluation_table(evaluation))


if __name__ == "__main__":
    main()
