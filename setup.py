"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so that editable installs work on
offline systems lacking the ``wheel`` package (legacy ``setup.py develop``
path).
"""

from setuptools import setup

setup()
