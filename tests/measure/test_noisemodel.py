"""Tests for noise models."""

import numpy as np
import pytest

from repro.measure import NoiseModel, for_mode


class TestNoiseModel:
    def test_augment_count_and_nonnegative(self):
        rng = np.random.default_rng(0)
        samples = NoiseModel(sd=0.5).augment(1.0, 30, rng)
        assert samples.shape == (30,)
        assert np.all(samples >= 0)

    def test_sd_matches_configuration(self):
        rng = np.random.default_rng(1)
        samples = NoiseModel(sd=0.5).augment(20.0, 5000, rng)
        assert np.std(samples) == pytest.approx(0.5, rel=0.1)
        assert np.mean(samples) == pytest.approx(20.0, abs=0.05)

    def test_zero_sd_deterministic(self):
        rng = np.random.default_rng(2)
        samples = NoiseModel(sd=0.0).augment(7.0, 10, rng)
        assert np.all(samples == 7.0)

    def test_outliers_shift_upward(self):
        rng = np.random.default_rng(3)
        model = NoiseModel(sd=0.0, outlier_prob=1.0, outlier_shift=(2.0, 3.0))
        samples = model.augment(10.0, 100, rng)
        assert np.all(samples >= 12.0)
        assert np.all(samples <= 13.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            NoiseModel(sd=-1.0)
        with pytest.raises(ValueError):
            NoiseModel(outlier_prob=2.0)
        with pytest.raises(ValueError):
            NoiseModel(outlier_shift=(3.0, 1.0))
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            NoiseModel().augment(1.0, 0, rng)


class TestForMode:
    def test_simul_is_paper_sd(self):
        assert for_mode("Simul").sd == 0.5
        assert for_mode("Simul").outlier_prob == 0.0

    def test_real_has_outliers(self):
        model = for_mode("Real")
        assert model.outlier_prob > 0
        assert model.sd > 0.5

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            for_mode("Emulated")
