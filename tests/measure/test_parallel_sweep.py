"""Tests for parallel sweeps (worker-count invariance + duration cache).

The worker body itself (the pickle-safe scenario rebuild shared with the
evaluation harness) is unit-tested directly in
``tests/evaluate/test_parallel_harness.py::TestRebuildApp``.
"""

import numpy as np
import pytest

from repro.evaluate import DurationCache
from repro.measure import cached_bank, sweep_scenario
from repro.platform import get_scenario


@pytest.fixture(autouse=True)
def small(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TILES_101", "10")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestParallelSweep:
    def test_identical_to_serial(self):
        scenario = get_scenario("b")
        serial = sweep_scenario(scenario, actions=[2, 7, 14], augment=4,
                                seed=5, workers=1)
        parallel = sweep_scenario(scenario, actions=[2, 7, 14], augment=4,
                                  seed=5, workers=2)
        for n in serial.actions:
            assert np.allclose(serial.samples[n], parallel.samples[n])
            assert serial.true_means[n] == parallel.true_means[n]
            assert serial.lp[n] == pytest.approx(parallel.lp[n])

    def test_rigid_line_parallel(self):
        scenario = get_scenario("b")
        bank = sweep_scenario(scenario, actions=[3, 14], augment=3,
                              include_rigid=True, workers=2)
        assert set(bank.rigid) == {3, 14}

    def test_cached_bank_env_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        bank = cached_bank(get_scenario("b"), augment=3, seed=8)
        assert bank.actions[-1] == 14


class TestSweepDurationCache:
    def test_warm_cache_reproduces_bank_bit_exactly(self):
        scenario = get_scenario("b")
        cache = DurationCache()
        kwargs = dict(actions=[2, 7, 14], augment=4, seed=5,
                      include_rigid=True)
        cold = sweep_scenario(scenario, cache=cache, **kwargs)
        assert cache.misses > 0 and cache.hits == 0
        warm = sweep_scenario(scenario, cache=cache, **kwargs)
        assert cache.hits > 0
        plain = sweep_scenario(scenario, **kwargs)
        for n in cold.actions:
            assert np.array_equal(cold.samples[n], warm.samples[n])
            assert np.array_equal(plain.samples[n], warm.samples[n])
            assert plain.true_means[n] == warm.true_means[n]
            assert plain.rigid[n] == warm.rigid[n]

    def test_cache_shared_across_rigid_variants(self):
        """The flexible sweep warms the plain sweep's lookups."""
        scenario = get_scenario("b")
        cache = DurationCache()
        sweep_scenario(scenario, actions=[2, 7], augment=3,
                       include_rigid=True, cache=cache)
        cache.reset_stats()
        sweep_scenario(scenario, actions=[2, 7], augment=3,
                       include_rigid=False, cache=cache)
        assert cache.misses == 0

    def test_cache_with_worker_pool(self):
        scenario = get_scenario("b")
        cache = DurationCache()
        serial = sweep_scenario(scenario, actions=[2, 7, 14], augment=4,
                                seed=5, workers=1)
        pooled = sweep_scenario(scenario, actions=[2, 7, 14], augment=4,
                                seed=5, workers=2, cache=cache)
        for n in serial.actions:
            assert np.array_equal(serial.samples[n], pooled.samples[n])
        assert len(cache) > 0

    def test_cached_bank_threads_cache_through(self, monkeypatch):
        cache = DurationCache()
        bank = cached_bank(get_scenario("b"), augment=3, seed=8, cache=cache)
        assert bank.actions[-1] == 14
        assert len(cache) == len(bank.actions)
