"""Tests for parallel sweeps (worker-count invariance)."""

import numpy as np
import pytest

from repro.measure import cached_bank, sweep_scenario
from repro.platform import get_scenario


@pytest.fixture(autouse=True)
def small(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TILES_101", "10")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestParallelSweep:
    def test_identical_to_serial(self):
        scenario = get_scenario("b")
        serial = sweep_scenario(scenario, actions=[2, 7, 14], augment=4,
                                seed=5, workers=1)
        parallel = sweep_scenario(scenario, actions=[2, 7, 14], augment=4,
                                  seed=5, workers=2)
        for n in serial.actions:
            assert np.allclose(serial.samples[n], parallel.samples[n])
            assert serial.true_means[n] == parallel.true_means[n]
            assert serial.lp[n] == pytest.approx(parallel.lp[n])

    def test_rigid_line_parallel(self):
        scenario = get_scenario("b")
        bank = sweep_scenario(scenario, actions=[3, 14], augment=3,
                              include_rigid=True, workers=2)
        assert set(bank.rigid) == {3, 14}

    def test_cached_bank_env_workers(self, monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        bank = cached_bank(get_scenario("b"), augment=3, seed=8)
        assert bank.actions[-1] == 14
