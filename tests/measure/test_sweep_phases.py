"""Tests for the per-phase sweep (Figure 2 bars)."""

import pytest

from repro.measure import sweep_phases
from repro.platform import get_scenario


@pytest.fixture(autouse=True)
def small(monkeypatch):
    monkeypatch.setenv("REPRO_TILES_101", "8")


class TestSweepPhases:
    @pytest.fixture(scope="class")
    def spans(self):
        import os

        os.environ["REPRO_TILES_101"] = "8"
        return sweep_phases(get_scenario("b"), actions=[2, 7, 14])

    def test_all_phases_present(self, spans):
        for n, phases in spans.items():
            assert {"generation", "factorization", "solve",
                    "determinant", "dot", "makespan"} <= set(phases)

    def test_spans_bounded_by_makespan(self, spans):
        for phases in spans.values():
            for name, span in phases.items():
                if name != "makespan":
                    assert span <= phases["makespan"] + 1e-9

    def test_generation_constant_ish_across_n_fact(self, spans):
        """Generation always uses all nodes, so its span barely moves."""
        gens = [p["generation"] for p in spans.values()]
        assert max(gens) <= 3.0 * min(gens) + 1e-9

    def test_main_phases_dominate(self, spans):
        for phases in spans.values():
            main = max(phases["generation"], phases["factorization"])
            assert phases["dot"] <= phases["makespan"]
            assert main > 0
