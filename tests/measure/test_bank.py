"""Tests for the measurement bank."""

import numpy as np
import pytest

from repro.measure import MeasurementBank, synthetic_bank


@pytest.fixture
def bank():
    return synthetic_bank(
        f=lambda n: 10.0 + 20.0 / n + 0.5 * n,
        actions=range(2, 11),
        lp=lambda n: 20.0 / n,
        group_boundaries=(4, 10),
        noise_sd=0.2,
        seed=7,
        label="test bank",
    )


class TestBankQueries:
    def test_resample_draws_from_samples(self, bank):
        rng = np.random.default_rng(0)
        for _ in range(20):
            y = bank.resample(5, rng)
            assert y in bank.samples[5]

    def test_mean_and_sd(self, bank):
        assert bank.mean(4) == pytest.approx(np.mean(bank.samples[4]))
        assert bank.sd(4) == pytest.approx(np.std(bank.samples[4]))

    def test_best_action_near_true_minimum(self, bank):
        # true min of 10 + 20/n + 0.5n is ~6.3
        assert bank.best_action() in (5, 6, 7)

    def test_n_total(self, bank):
        assert bank.n_total == 10

    def test_action_space_roundtrip(self, bank):
        space = bank.action_space()
        assert space.actions == bank.actions
        assert space.lp_bound(4) == pytest.approx(5.0)
        assert space.group_boundaries == (4, 10)

    def test_validation_missing_samples(self):
        with pytest.raises(ValueError, match="missing samples"):
            MeasurementBank(
                label="x", actions=(1, 2), samples={1: np.array([1.0])}, lp={}
            )

    def test_true_means_recorded(self, bank):
        assert bank.true_means[2] == pytest.approx(10.0 + 10.0 + 1.0)


class TestBankPersistence:
    def test_save_load_roundtrip(self, bank, tmp_path):
        path = tmp_path / "bank.json"
        bank.save(path)
        loaded = MeasurementBank.load(path)
        assert loaded.label == bank.label
        assert loaded.actions == bank.actions
        assert loaded.group_boundaries == bank.group_boundaries
        for n in bank.actions:
            assert np.allclose(loaded.samples[n], bank.samples[n])
            assert loaded.lp[n] == pytest.approx(bank.lp[n])

    def test_save_creates_directories(self, bank, tmp_path):
        path = tmp_path / "deep" / "nested" / "bank.json"
        bank.save(path)
        assert path.exists()
