"""Property-based tests for measurement-bank persistence and resampling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.measure import MeasurementBank


@st.composite
def banks(draw):
    lo = draw(st.integers(min_value=1, max_value=5))
    size = draw(st.integers(min_value=1, max_value=12))
    actions = tuple(range(lo, lo + size))
    k = draw(st.integers(min_value=1, max_value=8))
    samples = {}
    lp = {}
    for n in actions:
        base = draw(st.floats(min_value=0.1, max_value=100.0))
        samples[n] = np.abs(
            base + np.array(draw(st.lists(
                st.floats(min_value=-1.0, max_value=1.0),
                min_size=k, max_size=k,
            )))
        )
        lp[n] = base * 0.5
    boundaries = (actions[-1],)
    return MeasurementBank(
        label="fuzz", actions=actions, samples=samples, lp=lp,
        group_boundaries=boundaries,
    )


class TestBankProperties:
    @settings(max_examples=40, deadline=None)
    @given(bank=banks())
    def test_json_roundtrip_preserves_everything(self, bank, tmp_path_factory):
        path = tmp_path_factory.mktemp("banks") / "b.json"
        bank.save(path)
        loaded = MeasurementBank.load(path)
        assert loaded.actions == bank.actions
        assert loaded.group_boundaries == bank.group_boundaries
        for n in bank.actions:
            assert np.allclose(loaded.samples[n], bank.samples[n])
            assert loaded.lp[n] == pytest.approx(bank.lp[n])

    @settings(max_examples=40, deadline=None)
    @given(bank=banks(), seed=st.integers(min_value=0, max_value=1000))
    def test_resample_support(self, bank, seed):
        """Resampled values always come from the stored samples."""
        rng = np.random.default_rng(seed)
        for n in bank.actions:
            y = bank.resample(n, rng)
            assert np.any(np.isclose(bank.samples[n], y))

    @settings(max_examples=40, deadline=None)
    @given(bank=banks())
    def test_best_action_minimizes_mean(self, bank):
        best = bank.best_action()
        assert all(bank.mean(best) <= bank.mean(n) + 1e-12 for n in bank.actions)

    @settings(max_examples=20, deadline=None)
    @given(bank=banks())
    def test_action_space_consistent(self, bank):
        space = bank.action_space()
        assert space.n_total == bank.n_total
        assert space.lp_bound(bank.actions[0]) == pytest.approx(
            bank.lp[bank.actions[0]]
        )
