"""Tests for the simulator consistency checks (paper Section V spirit)."""

import pytest

from repro.measure import Check, consistency_report
from repro.measure.calibration import (
    check_lp_monotone_in_nodes,
    check_lp_sandwich,
    check_network_monotonicity,
    check_work_scaling,
)
from repro.platform import get_scenario
from repro.workload import Workload


@pytest.fixture(autouse=True)
def small(monkeypatch):
    monkeypatch.setenv("REPRO_TILES_101", "10")
    monkeypatch.setenv("REPRO_TILES_128", "10")


@pytest.fixture(scope="module")
def setup():
    import os

    os.environ["REPRO_TILES_101"] = "10"
    cluster = get_scenario("b").build_cluster()
    return cluster, Workload.from_name("101")


class TestIndividualChecks:
    def test_work_scaling(self, setup):
        cluster, wl = setup
        check = check_work_scaling(cluster, wl, n_fact=6)
        assert check.passed, check.detail

    def test_lp_sandwich(self, setup):
        cluster, wl = setup
        check = check_lp_sandwich(cluster, wl, n_fact=6)
        assert check.passed, check.detail

    def test_network_monotonicity(self, setup):
        cluster, wl = setup
        check = check_network_monotonicity(cluster, wl, n_fact=6)
        assert check.passed, check.detail

    def test_lp_monotone(self, setup):
        cluster, wl = setup
        check = check_lp_monotone_in_nodes(cluster, wl)
        assert check.passed, check.detail


class TestReport:
    def test_all_checks_pass_on_sd_scenario(self):
        import os

        os.environ["REPRO_TILES_128"] = "10"
        cluster = get_scenario("c").build_cluster()
        wl = Workload.from_name("128")
        checks = consistency_report(cluster, wl, n_fact=8)
        assert len(checks) == 4
        for c in checks:
            assert isinstance(c, Check)
            assert c.passed, f"{c.name}: {c.detail}"
