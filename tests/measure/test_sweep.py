"""Tests for scenario sweeps (on a reduced workload for speed)."""

import numpy as np
import pytest

from repro.measure import cached_bank, scenario_actions, sweep_2d, sweep_scenario
from repro.platform import get_scenario


@pytest.fixture(autouse=True)
def small_workload(monkeypatch, tmp_path):
    """Shrink tile counts and isolate the cache for fast sweeps."""
    monkeypatch.setenv("REPRO_TILES_101", "8")
    monkeypatch.setenv("REPRO_TILES_128", "8")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestScenarioActions:
    def test_covers_up_to_n(self):
        scenario = get_scenario("b")
        actions = scenario_actions(scenario)
        assert actions[-1] == scenario.total_nodes
        assert actions[0] >= 2


class TestSweep:
    def test_bank_structure(self):
        scenario = get_scenario("b")
        bank = sweep_scenario(scenario, actions=[2, 5, 9, 14], augment=5)
        assert bank.actions == (2, 5, 9, 14)
        assert all(len(bank.samples[n]) == 5 for n in bank.actions)
        assert all(bank.lp[n] > 0 for n in bank.actions)
        assert bank.group_boundaries == (2, 8, 14)

    def test_lp_below_measured(self):
        """The LP is a lower bound: below the deterministic simulation."""
        scenario = get_scenario("b")
        bank = sweep_scenario(scenario, actions=[3, 7, 14], augment=3)
        for n in bank.actions:
            assert bank.lp[n] <= bank.true_means[n] + 1e-9

    def test_rigid_line_included_on_request(self):
        scenario = get_scenario("b")
        bank = sweep_scenario(scenario, actions=[3, 14], augment=3, include_rigid=True)
        assert set(bank.rigid) == {3, 14}
        assert all(v > 0 for v in bank.rigid.values())

    def test_deterministic_given_seed(self):
        scenario = get_scenario("b")
        b1 = sweep_scenario(scenario, actions=[4, 14], augment=4, seed=1)
        b2 = sweep_scenario(scenario, actions=[4, 14], augment=4, seed=1)
        assert np.allclose(b1.samples[4], b2.samples[4])


class TestCache:
    def test_cache_roundtrip(self, tmp_path):
        scenario = get_scenario("b")
        b1 = cached_bank(scenario, augment=3, seed=9)
        b2 = cached_bank(scenario, augment=3, seed=9)
        assert b1.actions == b2.actions
        assert np.allclose(b1.samples[b1.actions[0]], b2.samples[b2.actions[0]])

    def test_cache_file_created(self, tmp_path):
        scenario = get_scenario("b")
        cached_bank(scenario, augment=3, seed=9)
        assert list(tmp_path.glob("bank_*.json"))


class TestSweep2D:
    def test_grid_shape_and_positivity(self):
        scenario = get_scenario("b")
        grid, gens, facts = sweep_2d(
            scenario, gen_counts=[4, 14], fact_counts=[2, 7, 14]
        )
        assert grid.shape == (2, 3)
        assert np.all(grid > 0)
