"""Stationary false-positive bound under fuzzed seeds (satellite check).

``tests/faults/test_detector.py`` pins ``STATIONARY_FP_BOUND`` on one
fixed seed family; this check widens the evidence: for 10 fresh fuzz
root seeds, 30 stationary repetitions of the Figure 6 shape (127
iterations) may alarm on at most the pinned fraction.  A detector
re-tune that only looks healthy on the original seeds fails here.
"""

import numpy as np

from repro.faults import PageHinkleyDetector, STATIONARY_FP_BOUND
from repro.fuzz import FUZZ_TAG

REPS = 30
ITERATIONS = 127


def test_stationary_fp_bound_across_fuzz_seeds():
    for root_seed in range(10):
        tripped = 0
        for rep in range(REPS):
            rng = np.random.default_rng((root_seed, FUZZ_TAG, rep))
            trace = 10.0 + rng.normal(0.0, 0.5, ITERATIONS)
            detector = PageHinkleyDetector()
            if any(detector.update(v) for v in trace):
                tripped += 1
        assert tripped / REPS <= STATIONARY_FP_BOUND, (
            f"fuzz seed {root_seed}: {tripped}/{REPS} stationary "
            f"repetitions alarmed; the pinned bound is "
            f"{STATIONARY_FP_BOUND:.0%}"
        )
