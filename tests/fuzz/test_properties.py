"""Tests for the strategy property checks over fuzzed scenarios."""

import dataclasses

import numpy as np
import pytest

from repro.fuzz import (
    ADAPTIVE_BASES,
    DEFAULT_REGRET_BOUND,
    PropertyConfig,
    build_bank,
    check_platform,
    regret_bound_for,
    regret_ratio,
    run_properties,
    sample_corpus,
    sample_platform,
)
from repro.fuzz.properties import UNIVERSAL_BOUND, base_strategy_name
from repro.strategies import registered_names

#: A cheap but representative strategy slice: one heuristic, one bandit,
#: one GP, one resilient wrapper.
FAST_STRATEGIES = ("DC", "UCB", "GP-discontinuous", "Resilient(UCB)")


def fast_config(**overrides):
    base = dict(strategies=FAST_STRATEGIES, check_workers=False)
    base.update(overrides)
    return PropertyConfig(**base)


class TestBoundClassing:
    def test_resilient_wrappers_inherit_the_base_class(self):
        assert base_strategy_name("Resilient(UCB)") == "UCB"
        assert base_strategy_name("UCB") == "UCB"
        assert base_strategy_name("Resilient(GP-UCB)") == "GP-UCB"

    def test_adaptive_strategies_get_the_tight_bound(self):
        for name in ADAPTIVE_BASES:
            assert regret_bound_for(name, 0.4) == 0.4
        assert regret_bound_for("Resilient(UCB)", 0.4) == 0.4

    def test_heuristics_get_the_universal_bound(self):
        for name in ("DC", "Right-Left", "Brent", "SANN",
                     "StochasticApprox", "All-nodes"):
            assert regret_bound_for(name, 0.4) == UNIVERSAL_BOUND

    def test_ucb_struct_is_deliberately_universal(self):
        # Its boundary prior is what fuzzed landscapes break (documented
        # calibration decision); moving it to the tight tier is an
        # interface change.
        assert regret_bound_for("UCB-struct", 0.4) == UNIVERSAL_BOUND
        assert regret_bound_for("Resilient(UCB-struct)", 0.4) \
            == UNIVERSAL_BOUND

    def test_every_registered_strategy_is_classified(self):
        # New strategies must land in one of the two tiers consciously.
        for name in registered_names():
            bound = regret_bound_for(name, DEFAULT_REGRET_BOUND)
            assert bound in (DEFAULT_REGRET_BOUND, UNIVERSAL_BOUND)


class TestRegretRatio:
    MEANS = {2: 10.0, 3: 6.0, 4: 8.0}

    def test_always_best_is_zero(self):
        ratio, lowest = regret_ratio([3, 3, 3], self.MEANS)
        assert ratio == 0.0
        assert lowest == 0.0

    def test_always_worst_is_one(self):
        ratio, _ = regret_ratio([2, 2], self.MEANS)
        assert ratio == pytest.approx(1.0)

    def test_mixed_play_lands_in_between(self):
        ratio, lowest = regret_ratio([2, 3, 4, 3], self.MEANS)
        # (4 + 0 + 2 + 0) / (4 * 4)
        assert ratio == pytest.approx(6.0 / 16.0)
        assert lowest == 0.0

    def test_flat_landscape_is_zero(self):
        ratio, _ = regret_ratio([2, 3], {2: 5.0, 3: 5.0})
        assert ratio == 0.0

    def test_faulted_ratio_uses_the_injector(self):
        from repro.faults import FaultInjector, canned_schedules

        schedule = canned_schedules(4, 20, seed=0)["straggler"]
        injector = FaultInjector(schedule, (2, 3, 4), 20)
        means = {2: 10.0, 3: 6.0, 4: 8.0}
        chosen = [3] * 20
        ratio, lowest = regret_ratio(chosen, means, injector)
        assert 0.0 <= ratio <= 1.0 + 1e-9
        assert lowest >= -1e-12
        # Playing the oracle arm per iteration is exactly zero regret.
        oracle = [injector.oracle_duration(t, means)[0] for t in range(20)]
        zero, _ = regret_ratio(oracle, means, injector)
        assert zero == pytest.approx(0.0, abs=1e-12)


class TestBuildBank:
    def test_cholesky_bank_has_lp_and_boundaries(self):
        platform = next(
            p for p in sample_corpus(10, root_seed=7)
            if p.family == "cholesky"
        )
        bank = build_bank(platform)
        assert bank.actions[-1] == platform.scenario.total_nodes
        assert set(bank.lp) == set(bank.actions)
        assert all(bank.lp[a] > 0 for a in bank.actions)
        assert bank.true_means

    def test_msr_bank_lp_is_below_the_means(self):
        platform = next(
            p for p in sample_corpus(10, root_seed=7) if p.family == "msr"
        )
        bank = build_bank(platform)
        for a in bank.actions:
            assert bank.lp[a] <= bank.true_means[a]

    def test_bank_is_deterministic(self):
        platform = sample_platform(3, root_seed=5)
        a, b = build_bank(platform), build_bank(platform)
        assert a.actions == b.actions
        for n in a.actions:
            assert np.array_equal(a.samples[n], b.samples[n])


class TestCheckPlatform:
    def test_clean_platform_passes_every_property(self):
        outcome = check_platform(
            sample_platform(1, root_seed=7), fast_config(check_workers=True)
        )
        assert outcome.failures == []
        assert set(outcome.ratios) == set(FAST_STRATEGIES)
        assert outcome.replay_checked

    def test_faulted_platform_passes_too(self):
        platform = next(
            p for p in sample_corpus(30, root_seed=7)
            if p.schedule is not None
        )
        outcome = check_platform(platform, fast_config())
        assert outcome.failures == []

    def test_workers_equivalence_is_exercised(self):
        outcome = check_platform(
            sample_platform(0, root_seed=7), fast_config(),
            check_workers=True,
        )
        assert outcome.workers_checked
        assert not any(
            f.check == "workers-equivalence" for f in outcome.failures
        )

    def test_tight_bound_forces_a_regret_failure(self):
        outcome = check_platform(
            sample_platform(0, root_seed=7),
            fast_config(regret_bound=1e-6, check_replay=False),
        )
        failed = {f.strategy for f in outcome.failures
                  if f.check == "regret-bound"}
        # Only the adaptive tier is held to the tight bound.
        assert failed
        assert all(
            base_strategy_name(s) in ADAPTIVE_BASES for s in failed
        )

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PropertyConfig(iterations=0)
        with pytest.raises(ValueError):
            PropertyConfig(regret_bound=0.0)
        with pytest.raises(ValueError):
            PropertyConfig(workers=0)


class TestRunProperties:
    @pytest.fixture(scope="class")
    def report(self):
        corpus = sample_corpus(4, root_seed=7)
        return run_properties(corpus, fast_config())

    def test_smoke_corpus_is_green(self, report):
        assert report.ok
        assert len(report.outcomes) == 4

    def test_report_dict_is_canonical(self, report):
        payload = report.to_dict()
        assert payload["ok"] is True
        assert sorted(payload["strategies"]) == sorted(FAST_STRATEGIES)
        for entry in payload["strategies"].values():
            assert 0.0 <= entry["max_ratio"] <= 1.0 + 1e-9
            assert entry["failures"] == 0
        assert len(payload["scenarios"]) == 4
        # Serializable and stable under re-serialization.
        import json

        blob = json.dumps(payload, sort_keys=True)
        assert json.loads(blob) == json.loads(json.dumps(payload,
                                                         sort_keys=True))

    def test_report_is_worker_count_invariant(self, report):
        corpus = sample_corpus(4, root_seed=7)
        fanned = run_properties(corpus, fast_config(workers=2))
        assert fanned.to_dict() == report.to_dict()
