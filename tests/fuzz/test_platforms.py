"""Tests for the seeded platform/workload sampler."""

import dataclasses

import pytest

from repro.fuzz import (
    FAMILIES,
    FUZZ_TAG,
    FuzzConfig,
    FuzzedPlatform,
    derive_platform_seed,
    sample_corpus,
    sample_platform,
    validate_scenario,
)
from repro.platform import all_scenarios
from repro.platform.scenarios import Scenario


class TestDeterminism:
    def test_same_coordinates_same_platform(self):
        a = sample_platform(5, root_seed=42)
        b = sample_platform(5, root_seed=42)
        assert a == b
        assert a.to_dict() == b.to_dict()
        assert a.fingerprint() == b.fingerprint()

    def test_different_index_different_platform(self):
        assert sample_platform(0, 42) != sample_platform(1, 42)

    def test_different_root_seed_different_platform(self):
        assert sample_platform(3, 1) != sample_platform(3, 2)

    def test_seed_derivation_is_tagged(self):
        # The fuzz stream must be decorrelated from evaluation streams
        # built over the same root seed: the tag sits in the tuple.
        assert derive_platform_seed(7, 3) == (7, FUZZ_TAG, 3)

    def test_corpus_is_reproducible(self):
        a = sample_corpus(10, root_seed=9)
        b = sample_corpus(10, root_seed=9)
        assert [p.fingerprint() for p in a] == [p.fingerprint() for p in b]

    def test_family_filter_preserves_identity(self):
        # A platform seen through a filtered corpus is bit-identical to
        # the same index in the unfiltered one.
        full = {p.index: p for p in sample_corpus(20, root_seed=3)}
        for p in sample_corpus(6, root_seed=3, families=("msr",)):
            assert p.family == "msr"
            if p.index in full:
                assert p == full[p.index]

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            sample_corpus(4, families=("bogus",))

    def test_bad_count_rejected(self):
        with pytest.raises(ValueError):
            sample_corpus(0)


class TestSampledSpace:
    def test_corpus_within_config_bounds(self):
        cfg = FuzzConfig()
        for p in sample_corpus(24, root_seed=1, config=cfg):
            n = p.scenario.total_nodes
            # Anchor jitter can add one node beyond the sampled budget.
            assert cfg.min_nodes - 1 <= n <= cfg.max_nodes + 1
            assert 1 <= len(p.scenario.counts) <= 3
            for _, f in p.speed_factors:
                assert cfg.speed_ratio[0] <= f <= cfg.speed_ratio[1]
            assert (
                cfg.bandwidth_ratio[0]
                <= p.bandwidth_factor
                <= cfg.bandwidth_ratio[1]
            )
            if p.family == "cholesky":
                assert cfg.tiles[0] <= p.tiles <= cfg.tiles[1]
                assert p.msr is None
            else:
                assert p.msr is not None
                assert p.msr.reduces <= n

    def test_both_families_and_faults_appear(self):
        corpus = sample_corpus(40, root_seed=0)
        assert {p.family for p in corpus} == set(FAMILIES)
        assert any(p.schedule is not None for p in corpus)
        assert any(p.schedule is None for p in corpus)

    def test_every_platform_builds_its_cluster(self):
        for p in sample_corpus(12, root_seed=2):
            cluster = p.build_cluster()
            assert len(cluster) == p.scenario.total_nodes
            if p.schedule is not None:
                # Sampled schedules fit their pool by construction.
                p.schedule.validate_for(len(cluster), 2)

    def test_speed_factors_scale_the_node_types(self):
        p = sample_platform(0, root_seed=6)
        cluster = p.build_cluster()
        from repro.platform.catalog import node_type

        for group in cluster.groups:
            cat = group.node_type.category
            base = node_type(p.scenario.site, cat)
            f = p.speed_factor(cat)
            assert group.node_type.cpu_gflops == pytest.approx(
                base.cpu_gflops * f
            )
            assert group.node_type.nic_gbps == pytest.approx(
                base.nic_gbps * p.bandwidth_factor
            )

    def test_anchored_platforms_use_table2_sites(self):
        # Anchors are picked by index through the locked all_scenarios()
        # ordering; their sites must come from the table.
        sites = {s.site for s in all_scenarios()}
        for p in sample_corpus(30, root_seed=4):
            assert p.scenario.site in sites


class TestRoundTrip:
    def test_to_dict_from_dict_is_identity(self):
        for p in sample_corpus(8, root_seed=11):
            assert FuzzedPlatform.from_dict(p.to_dict()) == p

    def test_from_dict_rejects_wrong_schema(self):
        payload = sample_platform(0).to_dict()
        payload["schema"] = 99
        with pytest.raises(ValueError):
            FuzzedPlatform.from_dict(payload)

    def test_fingerprint_tracks_content(self):
        p = sample_platform(1, root_seed=5)
        q = dataclasses.replace(p, tiles=p.tiles + 1)
        assert p.fingerprint() != q.fingerprint()


class TestValidation:
    def _scenario(self, **overrides):
        base = dict(key="fz0000", site="G5K",
                    counts=(("L", 2), ("S", 4)), workload="101",
                    mode="Simul")
        base.update(overrides)
        return Scenario(**base)

    def test_valid_scenario_passes(self):
        validate_scenario(self._scenario())

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError):
            validate_scenario(self._scenario(site="Mars"))

    def test_empty_counts_rejected(self):
        with pytest.raises(ValueError):
            validate_scenario(self._scenario(counts=()))

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            validate_scenario(self._scenario(counts=(("L", 0),)))

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError):
            validate_scenario(self._scenario(workload="999"))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            validate_scenario(self._scenario(mode="Imagined"))

    def test_config_bounds_validated(self):
        with pytest.raises(ValueError):
            FuzzConfig(min_nodes=10, max_nodes=4)
        with pytest.raises(ValueError):
            FuzzConfig(min_groups=0)
        with pytest.raises(ValueError):
            FuzzConfig(fault_prob=1.5)
        with pytest.raises(ValueError):
            FuzzConfig(iterations=5)
