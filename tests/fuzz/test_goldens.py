"""Regression replay of every committed canned fuzz scenario.

Each golden under ``tests/goldens/fuzz/`` is a shrunk scenario promoted
from a real property failure, with the config under which the property
is now expected to *pass* (``expect: "pass"``).  A promoted-but-unfixed
golden keeps this suite red; a fixed one guards the fix forever.
"""

from pathlib import Path

import pytest

from repro.fuzz import FuzzedPlatform, load_golden, replay_golden

GOLDEN_DIR = Path(__file__).resolve().parents[1] / "goldens" / "fuzz"
GOLDENS = sorted(GOLDEN_DIR.glob("*.json"))


def test_at_least_one_golden_is_committed():
    assert GOLDENS, "the fuzz regression corpus must not be empty"


@pytest.mark.parametrize(
    "path", GOLDENS, ids=[p.stem for p in GOLDENS]
)
def test_golden_structure(path):
    payload = load_golden(path)
    assert payload["expect"] == "pass"
    # The embedded platform round-trips through the serializer.
    platform = FuzzedPlatform.from_dict(payload["platform"])
    assert platform.to_dict() == payload["platform"]
    assert payload["failure"]["check"] in (
        "regret-bound", "regret-monotone", "replay", "workers-equivalence"
    )


@pytest.mark.parametrize(
    "path", GOLDENS, ids=[p.stem for p in GOLDENS]
)
def test_golden_replays_green(path):
    reproduced = replay_golden(path)
    assert reproduced == [], (
        f"{path.name}: the promoted failure reproduces again "
        f"({reproduced[0].detail}); the regression it guards is back"
    )
