"""Tests for the scenario shrinker and golden promotion lifecycle."""

import dataclasses
import json

import pytest

from repro.fuzz import (
    PropertyConfig,
    check_platform,
    golden_payload,
    load_golden,
    promote,
    replay_golden,
    sample_platform,
    shrink,
)
from repro.fuzz.shrink import candidates, golden_name, reproduce


@pytest.fixture(scope="module")
def forced():
    """A real failure, forced by an absurdly tight bound on UCB."""
    platform = sample_platform(0, root_seed=7)
    config = PropertyConfig(regret_bound=1e-6, strategies=("UCB",),
                            check_replay=False, check_workers=False)
    outcome = check_platform(platform, config)
    failure = next(f for f in outcome.failures
                   if f.check == "regret-bound")
    return platform, failure, config


class TestCandidates:
    def test_multi_group_platform_offers_group_drops(self):
        platform = sample_platform(0, root_seed=7)
        steps = [s for s, _ in candidates(platform)]
        assert any(s.startswith("drop group") for s in steps)
        assert any(s.startswith("halve group") for s in steps)

    def test_cholesky_offers_tile_halving(self):
        platform = sample_platform(0, root_seed=7)
        assert platform.family == "cholesky"
        assert any(s == "halve tiles" for s, _ in candidates(platform))

    def test_msr_offers_workload_halving(self):
        platform = next(
            sample_platform(i, root_seed=7) for i in range(40)
            if sample_platform(i, root_seed=7).family == "msr"
        )
        steps = [s for s, _ in candidates(platform)]
        assert "halve maps" in steps or "halve reduces" in steps

    def test_faulted_platform_offers_fault_stripping(self):
        platform = next(
            sample_platform(i, root_seed=7) for i in range(40)
            if sample_platform(i, root_seed=7).schedule is not None
        )
        steps = [s for s, _ in candidates(platform)]
        assert any(s.startswith("strip fault") for s in steps)
        assert "drop schedule" in steps

    def test_candidates_are_valid_platforms(self):
        platform = sample_platform(4, root_seed=7)
        for step, candidate in candidates(platform):
            assert candidate.scenario.counts
            assert candidate != platform


class TestShrink:
    def test_reproduce_confirms_a_real_failure(self, forced):
        platform, failure, config = forced
        again = reproduce(platform, failure, config)
        assert again is not None
        assert again.strategy == failure.strategy
        assert again.check == failure.check

    def test_reproduce_rejects_a_healthy_config(self, forced):
        platform, failure, config = forced
        healthy = dataclasses.replace(config, regret_bound=1.0)
        assert reproduce(platform, failure, healthy) is None

    def test_shrink_reduces_and_still_fails(self, forced):
        platform, failure, config = forced
        result = shrink(platform, failure, config)
        assert result.shrunk
        assert (
            result.platform.scenario.total_nodes
            < platform.scenario.total_nodes
        )
        # The minimized platform still reproduces the failure.
        assert reproduce(result.platform, result.failure,
                         config) is not None


class TestGoldens:
    def test_promote_writes_a_replayable_golden(self, forced, tmp_path):
        platform, failure, config = forced
        path = promote(platform, failure, config, directory=tmp_path)
        assert path.exists()
        payload = load_golden(path)
        assert payload["expect"] == "pass"
        assert payload["failure"]["strategy"] == "UCB"
        # The committed expectation is not yet met: replay reproduces.
        assert replay_golden(path)

    def test_fixed_golden_replays_green(self, forced, tmp_path):
        platform, failure, config = forced
        path = promote(platform, failure, config, directory=tmp_path)
        payload = json.loads(path.read_text())
        # Simulate the fix: the mis-calibrated bound is corrected.
        payload["config"]["regret_bound"] = 1.0
        path.write_text(json.dumps(payload, indent=2, sort_keys=True))
        assert replay_golden(path) == []

    def test_golden_name_is_deterministic_and_descriptive(self, forced):
        platform, failure, _ = forced
        name = golden_name(platform, failure)
        assert name == golden_name(platform, failure)
        assert name.startswith("fz_cholesky_ucb_regret-bound_")
        assert name.endswith(".json")

    def test_load_golden_validates_schema(self, forced, tmp_path):
        platform, failure, config = forced
        payload = golden_payload(platform, failure, config)
        payload["schema"] = 99
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(payload))
        with pytest.raises(ValueError):
            load_golden(bad)

    def test_load_golden_requires_the_core_fields(self, tmp_path):
        bad = tmp_path / "incomplete.json"
        bad.write_text(json.dumps({"schema": 1, "platform": {}}))
        with pytest.raises(ValueError):
            load_golden(bad)
