"""Tests for the map/shuffle/reduce workload family."""

import pytest

from repro.fuzz import (
    MSR_PHASES,
    MapShuffleReduceWorkload,
    MSRApp,
    build_msr_graph,
    msr_perfmodel,
)
from repro.platform import get_scenario


@pytest.fixture(scope="module")
def cluster():
    return get_scenario("b").build_cluster()  # 2L-6M-6S, 14 nodes


def small_workload(**overrides):
    base = dict(maps=8, reduces=4, record_mb=128.0, map_flops=5e11,
                reduce_flops=2e12, skew=3.0)
    base.update(overrides)
    return MapShuffleReduceWorkload(**base)


class TestWorkload:
    def test_validation(self):
        with pytest.raises(ValueError):
            small_workload(maps=0)
        with pytest.raises(ValueError):
            small_workload(reduces=0)
        with pytest.raises(ValueError):
            small_workload(record_mb=0.0)
        with pytest.raises(ValueError):
            small_workload(skew=0.5)

    def test_partition_weights_carry_the_skew(self):
        w = small_workload(reduces=4, skew=3.0)
        weights = w.partition_weights
        assert sum(weights) == pytest.approx(1.0)
        assert weights[0] == pytest.approx(3.0 * weights[1])
        assert len(set(weights[1:])) == 1

    def test_balanced_pipeline_has_uniform_weights(self):
        w = small_workload(skew=1.0)
        assert len(set(w.partition_weights)) == 1

    def test_total_flops_accounts_every_phase(self):
        w = small_workload()
        assert w.total_flops == pytest.approx(
            8 * 5e11 + 0.1 * 2e12 + 2e12 + 1e7 * 4
        )


class TestGraph:
    def test_task_count_and_phases(self, cluster):
        w = small_workload()
        graph = build_msr_graph(cluster, w, 6)
        tasks = graph.tasks
        # maps + one merge and one reduce per partition + one collect.
        assert len(tasks) == w.maps + 2 * w.reduces + 1
        by_phase = {}
        for t in tasks:
            by_phase.setdefault(t.phase, 0)
            by_phase[t.phase] += 1
        assert set(by_phase) == set(MSR_PHASES)
        assert by_phase["map"] == w.maps
        assert by_phase["shuffle"] == w.reduces
        assert by_phase["reduce"] == w.reduces
        assert by_phase["collect"] == 1

    def test_n_bounds_validated(self, cluster):
        w = small_workload()
        with pytest.raises(ValueError):
            build_msr_graph(cluster, w, 0)
        with pytest.raises(ValueError):
            build_msr_graph(cluster, w, len(cluster) + 1)

    def test_simulation_runs_and_uses_only_n_nodes(self, cluster):
        app = MSRApp(cluster, small_workload(), trace=True)
        result = app.simulate(4)
        assert result.makespan > 0
        assert all(t.node < 4 for t in result.task_records)

    def test_shuffle_triggers_transfers(self, cluster):
        # The all-to-all: merge tasks read slices homed on other nodes.
        app = MSRApp(cluster, small_workload())
        result = app.simulate(6)
        assert result.transfer_count > 0
        assert result.comm_bytes > 0

    def test_skew_makes_partition_zero_the_straggler(self):
        # Homogeneous cluster (64L) so the tail is pure skew, not node
        # speed differences.
        homogeneous = get_scenario("m").build_cluster()
        app = MSRApp(homogeneous, small_workload(skew=5.0), trace=True)
        result = app.simulate(6)
        reduces = sorted(
            (t for t in result.task_records if t.phase == "reduce"),
            key=lambda t: t.end - t.start,
        )
        straggler, rest = reduces[-1], reduces[:-1]
        assert (straggler.end - straggler.start) > 2 * max(
            t.end - t.start for t in rest
        )
        # The collect depends on every reduce, so it starts after the
        # straggler finishes: the tail is dependency-driven.
        collect = next(
            t for t in result.task_records if t.phase == "collect"
        )
        assert collect.start >= straggler.end - 1e-9

    def test_perfmodel_covers_all_kernels(self):
        model = msr_perfmodel()
        for kernel in ("mapk", "mergek", "reducek", "collectk"):
            assert any(k == kernel for k, _ in model.efficiency)


class TestApp:
    def test_measure_is_cached_and_noise_free_by_default(self, cluster):
        app = MSRApp(cluster, small_workload())
        assert app.measure(5) == app.measure(5)
        assert app.measure(5) == app.simulate(5).makespan

    def test_noise_layers_on_top_of_the_cache(self, cluster):
        # Same callable contract as ExaGeoStat: noise(duration, rng).
        from repro.measure.noisemodel import for_mode

        noise = for_mode("Simul").sample
        app = MSRApp(cluster, small_workload(), noise=noise, seed=3)
        values = {app.measure(5) for _ in range(6)}
        assert len(values) > 1
        base = app.simulate(5).makespan
        assert all(abs(v - base) < 5.0 for v in values)

    def test_lp_bound_is_a_decreasing_lower_bound(self, cluster):
        app = MSRApp(cluster, small_workload())
        bounds = [app.lp_bound(n) for n in range(2, len(cluster) + 1)]
        assert all(b > 0 for b in bounds)
        assert all(a >= b for a, b in zip(bounds, bounds[1:]))
        for n in (2, 6, len(cluster)):
            assert app.lp_bound(n) <= app.simulate(n).makespan
