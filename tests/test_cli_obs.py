"""Characterization of the `repro obs` telemetry-analytics CLI."""

import json

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def small(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TILES_101", "8")
    monkeypatch.setenv("REPRO_TILES_128", "8")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "banks"))
    monkeypatch.chdir(tmp_path)


@pytest.fixture(scope="module")
def trace_path(tmp_path_factory):
    """One tick-clock trace shared by the series/slo/dash tests."""
    import os

    base = tmp_path_factory.mktemp("obs-cli")
    path = base / "trace.jsonl"
    overrides = {"REPRO_TILES_101": "8", "REPRO_TILES_128": "8",
                 "REPRO_CACHE_DIR": str(base / "banks")}
    saved = {k: os.environ.get(k) for k in overrides}
    os.environ.update(overrides)
    try:
        assert main(["compare", "b", "--reps", "2",
                     "--trace", str(path), "--trace-ticks"]) == 0
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
    return path


SMALL = ["--iterations", "20", "--reps", "2"]


class TestObsSeries:
    def test_renders_mirrored_series(self, trace_path, capsys):
        assert main(["obs", "series", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "decision.overhead{strategy=" in out
        assert "cell.total{" in out
        assert "p99" in out and "rate" in out

    def test_window_flag_bounds_counts(self, trace_path, capsys):
        assert main(["obs", "series", str(trace_path),
                     "--window", "5"]) == 0
        out = capsys.readouterr().out
        assert "last 5 points" in out

    def test_empty_trace_reports_nothing(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["obs", "series", str(empty)]) == 0
        assert "no mirrored series" in capsys.readouterr().out


class TestObsSlo:
    def test_default_rules_evaluate(self, trace_path, capsys):
        assert main(["obs", "slo", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "decision-overhead-p99" in out
        assert "3 rules" in out

    def test_custom_rules_file(self, trace_path, tmp_path, capsys):
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps({"rules": [
            {"name": "decisions-exist", "series": "decision.duration",
             "kind": "threshold", "agg": "count", "op": ">=", "value": 1.0},
        ]}))
        assert main(["obs", "slo", str(trace_path),
                     "--rules", str(rules)]) == 0
        out = capsys.readouterr().out
        assert "decisions-exist" in out
        assert "all ok" in out

    def test_strict_violation_exits_1(self, trace_path, tmp_path):
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps({"rules": [
            {"name": "impossible", "series": "decision.duration",
             "kind": "threshold", "agg": "count", "op": "<=",
             "value": -1.0},
        ]}))
        with pytest.raises(SystemExit) as exc:
            main(["obs", "slo", str(trace_path), "--rules", str(rules),
                  "--strict"])
        assert exc.value.code == 1

    def test_invalid_rules_exit_2(self, trace_path, tmp_path, capsys):
        rules = tmp_path / "rules.json"
        rules.write_text(json.dumps({"rules": [{"name": "r"}]}))
        with pytest.raises(SystemExit) as exc:
            main(["obs", "slo", str(trace_path), "--rules", str(rules)])
        assert exc.value.code == 2
        assert "invalid SLO rules" in capsys.readouterr().err


class TestObsForensics:
    def test_scores_both_families(self, capsys):
        assert main(["obs", "forensics", "b", "--schedules", "crash",
                     *SMALL]) == 0
        out = capsys.readouterr().out
        assert "ph(t=6,d=0.25,c=8)" in out
        assert "sw(w=10,t=3,c=8)" in out
        assert "precision" in out and "latency" in out

    def test_out_artifact_carries_both_metric_families(self, tmp_path,
                                                       capsys):
        out_path = tmp_path / "BENCH_forensics.json"
        assert main(["obs", "forensics", "b", "--schedules", "crash",
                     "--strategies", "UCB", *SMALL,
                     "--out", str(out_path)]) == 0
        capsys.readouterr()
        payload = json.loads(out_path.read_text())
        assert payload["label"].startswith("obs-forensics")
        keys = set(payload["metrics"])
        assert any(k.startswith("forensics.crash.page-hinkley.")
                   for k in keys)
        assert any(k.startswith("forensics.crash.sliding-window.")
                   for k in keys)
        assert "convergence.UCB.cumulative_regret" in keys
        assert payload["results"]

    def test_sweep_ranks_configs(self, capsys):
        assert main(["obs", "forensics", "b", "--schedules", "crash",
                     *SMALL, "--sweep", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "rank" in out and "mean F1" in out
        # --top bounds the table to 5 ranked rows.
        assert " 5  " in out and " 6  " not in out

    def test_unknown_schedule_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["obs", "forensics", "b", "--schedules", "meteor",
                  *SMALL])
        assert exc.value.code == 2
        assert "unknown schedule" in capsys.readouterr().err


class TestObsConvergence:
    def test_renders_summary_table(self, capsys):
        assert main(["obs", "convergence", "b", "--strategies", "UCB",
                     "GP-discontinuous", *SMALL]) == 0
        out = capsys.readouterr().out
        assert "iters-to-5%" in out
        assert "UCB" in out and "GP-discontinuous" in out

    def test_unknown_strategy_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["obs", "convergence", "b", "--strategies", "Psychic",
                  *SMALL])
        assert exc.value.code == 2
        assert "unknown strategy" in capsys.readouterr().err


class TestObsDash:
    DASH = ["obs", "dash", "b", "--schedules", "crash",
            "--strategies", "UCB", *SMALL]

    def test_writes_self_contained_html(self, tmp_path, capsys):
        out = tmp_path / "dash.html"
        assert main([*self.DASH, "--out", str(out)]) == 0
        html = out.read_text()
        assert html.startswith("<!DOCTYPE html>")
        assert "<script" not in html
        assert "http://" not in html and "https://" not in html
        assert "Convergence" in html and "forensics" in html

    def test_double_render_is_byte_identical(self, tmp_path, capsys):
        a, b = tmp_path / "a.html", tmp_path / "b.html"
        assert main([*self.DASH, "--out", str(a)]) == 0
        assert main([*self.DASH, "--out", str(b)]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_trace_enables_series_and_slo_sections(self, trace_path,
                                                   tmp_path, capsys):
        out = tmp_path / "dash.html"
        assert main([*self.DASH, "--out", str(out),
                     "--trace", str(trace_path)]) == 0
        html = out.read_text()
        assert "SLO verdicts" in html
        assert "<h2>Series</h2>" in html
