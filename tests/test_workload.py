"""Tests for workload definitions."""

import pytest

from repro import config
from repro.workload import Workload


class TestWorkload:
    def test_matrix_order_close_to_paper(self):
        wl = Workload.from_name("101")
        assert wl.matrix_order == pytest.approx(96100, rel=0.01)

    def test_128_bigger_than_101(self):
        a = Workload.from_name("101")
        b = Workload.from_name("128")
        assert b.factorization_total_flops > a.factorization_total_flops
        assert b.matrix_bytes > a.matrix_bytes

    def test_lower_tile_count(self):
        wl = Workload(name="101", t=4, nb=10)
        assert wl.lower_tile_count == 10

    def test_bytes(self):
        wl = Workload(name="101", t=2, nb=10)
        assert wl.tile_bytes == 800.0
        assert wl.matrix_bytes == 800.0 * 3

    def test_generation_flops_scale_with_tile_area(self):
        a = Workload(name="101", t=4, nb=10)
        b = Workload(name="101", t=4, nb=20)
        assert b.generation_flops_per_tile == pytest.approx(
            4 * a.generation_flops_per_tile
        )

    def test_factorization_flops_asymptotic(self):
        wl = Workload.from_name("128")
        n = wl.matrix_order
        assert wl.factorization_total_flops == pytest.approx(n**3 / 3, rel=0.15)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            Workload.from_name("404")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TILES_101", "10")
        assert Workload.from_name("101").t == 10

    def test_bad_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_TILES_101", "1")
        with pytest.raises(ValueError):
            Workload.from_name("101")


class TestConfig:
    def test_defaults(self):
        assert config.tiles_for("101") >= 2
        assert config.tiles_for("128") >= 2

    def test_cache_dir_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
        assert str(config.cache_dir()) == "/tmp/somewhere"
