"""`repro perf record` / `repro perf check`: ledger CLI and exit codes.

Pins the gate contract: exit 0 against a freshly recorded baseline,
exit 1 on a synthetically injected makespan regression, a non-blocking
warn when no baseline matches, and the root-level ``BENCH_timeline.json``
trajectory artifact.
"""

import json

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def small(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TILES_101", "8")
    monkeypatch.setenv("REPRO_TILES_128", "8")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "banks"))
    monkeypatch.chdir(tmp_path)


@pytest.fixture()
def ledger(tmp_path):
    return tmp_path / "ledger.jsonl"


def record(ledger, extra=()):
    return main(["perf", "record", "b", "--ledger", str(ledger), *extra])


def check(ledger, extra=()):
    return main(["perf", "check", "b", "--ledger", str(ledger), *extra])


def tamper(ledger, factor):
    """Scale the baseline makespan so the current run looks regressed."""
    entry = json.loads(ledger.read_text().splitlines()[0])
    entry["metrics"]["makespan_s"] *= factor
    ledger.write_text(json.dumps(entry) + "\n")


class TestRecord:
    def test_appends_entry_and_root_report(self, tmp_path, ledger, capsys):
        assert record(ledger) == 0
        (line,) = ledger.read_text().splitlines()
        entry = json.loads(line)
        assert entry["schema"] == 1
        assert entry["label"] == "b"
        assert entry["metrics"]["makespan_s"] > 0.0
        assert entry["config"]["tiles"] == 8
        root = json.loads((tmp_path / "BENCH_timeline.json").read_text())
        assert root["metrics"] == entry["metrics"]
        assert "recorded_at" in root

    def test_append_only(self, ledger, capsys):
        assert record(ledger) == 0
        assert record(ledger) == 0
        assert len(ledger.read_text().splitlines()) == 2

    def test_root_out_disabled(self, tmp_path, ledger, capsys):
        assert record(ledger, ["--root-out", ""]) == 0
        assert not (tmp_path / "BENCH_timeline.json").exists()

    def test_bench_metrics_merged(self, tmp_path, ledger, capsys):
        bench = tmp_path / "BENCH_harness.json"
        bench.write_text(json.dumps({"speedup": 2.5,
                                     "cache": {"hit_rate": 1.0}}))
        assert record(ledger, ["--bench", str(bench)]) == 0
        entry = json.loads(ledger.read_text().splitlines()[0])
        assert entry["metrics"]["bench.speedup"] == 2.5
        assert entry["metrics"]["bench.cache_hit_rate"] == 1.0


class TestCheck:
    def test_passes_against_fresh_baseline(self, ledger, capsys):
        assert record(ledger) == 0
        assert check(ledger) == 0
        assert "perf check: PASS" in capsys.readouterr().out

    def test_fails_on_injected_makespan_regression(self, ledger, capsys):
        assert record(ledger) == 0
        tamper(ledger, 1 / 1.25)  # current makespan now +25 % vs baseline
        with pytest.raises(SystemExit) as exc:
            check(ledger)
        assert exc.value.code == 1
        out = capsys.readouterr().out
        assert "perf check: FAIL" in out
        assert "makespan_s" in out

    def test_higher_threshold_tolerates_it(self, ledger, capsys):
        assert record(ledger) == 0
        tamper(ledger, 1 / 1.25)
        assert check(ledger, ["--threshold", "0.5"]) == 0

    def test_missing_baseline_warns_non_blocking(self, ledger, capsys):
        assert check(ledger) == 0
        assert "no matching ledger baseline" in capsys.readouterr().out

    def test_require_baseline_makes_it_blocking(self, ledger, capsys):
        with pytest.raises(SystemExit) as exc:
            check(ledger, ["--require-baseline"])
        assert exc.value.code == 1

    def test_mismatched_config_finds_no_baseline(self, ledger, capsys,
                                                 monkeypatch):
        assert record(ledger) == 0
        monkeypatch.setenv("REPRO_TILES_101", "10")  # different fingerprint
        assert check(ledger) == 0
        assert "no matching ledger baseline" in capsys.readouterr().out

    def test_bench_metrics_never_gate(self, tmp_path, ledger, capsys):
        bench = tmp_path / "BENCH_harness.json"
        bench.write_text(json.dumps({"speedup": 100.0}))
        assert record(ledger, ["--bench", str(bench)]) == 0
        bench.write_text(json.dumps({"speedup": 0.001}))  # huge wall delta
        assert check(ledger, ["--bench", str(bench)]) == 0

    def test_json_format(self, ledger, capsys):
        assert record(ledger) == 0
        capsys.readouterr()
        assert check(ledger, ["--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["baseline_found"] is True
        gated = [c for c in payload["checks"] if c["gated"]]
        assert gated
        assert all(c["rel_change"] == 0.0 for c in gated)

    def test_negative_threshold_exits_2(self, ledger, capsys):
        with pytest.raises(SystemExit) as exc:
            check(ledger, ["--threshold", "-0.5"])
        assert exc.value.code == 2
        assert "--threshold" in capsys.readouterr().err
