"""JSONL sink: canonical encoding, schema golden, byte reproducibility."""

import json

import pytest

from repro.obs import (
    TRACE_SCHEMA_VERSION,
    JsonlSink,
    MemorySink,
    TickClock,
    Tracer,
    encode_record,
    finish_trace,
    get_tracer,
    NULL_TRACER,
    read_trace,
    start_trace,
    trace_session,
)


class TestEncoding:
    def test_canonical_key_order_and_separators(self):
        a = encode_record({"b": 1, "a": 2})
        b = encode_record({"a": 2, "b": 1})
        assert a == b == '{"a":2,"b":1}'

    def test_roundtrips_through_json(self):
        rec = {"kind": "span", "t0": 0.0, "nested": {"x": [1, 2]}}
        assert json.loads(encode_record(rec)) == rec


class TestJsonlSink:
    def test_writes_one_line_per_record(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(path)
        sink.emit({"kind": "a"})
        sink.emit({"kind": "b"})
        sink.close()
        assert read_trace(path) == [{"kind": "a"}, {"kind": "b"}]

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        JsonlSink(path).close()
        assert path.exists()

    def test_emit_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            sink.emit({"kind": "late"})


class TestSchemaGolden:
    """Pin the exact byte layout of the core record kinds.

    A change here is a trace schema change: bump TRACE_SCHEMA_VERSION
    and update downstream consumers (``repro stats``) deliberately.
    """

    def test_header_bytes(self):
        tr = Tracer(sink=MemorySink(), clock=TickClock())
        tr.header()
        assert tr.sink.lines() == [
            '{"clock":"ticks","kind":"trace.start","schema":1,'
            '"t":0.0,"wall_time":0.0}'
        ]
        assert TRACE_SCHEMA_VERSION == 1

    def test_span_bytes(self):
        tr = Tracer(sink=MemorySink(), clock=TickClock())
        with tr.span("fact", tiles=4):
            pass
        assert tr.sink.lines() == [
            '{"dur":1.0,"kind":"span","name":"fact","ok":true,'
            '"parent":null,"t0":0.0,"t1":1.0,"tiles":4}'
        ]

    def test_summary_bytes(self):
        tr = Tracer(sink=MemorySink(), clock=TickClock())
        tr.count("cache.hit", 2)
        tr.close()
        assert tr.sink.lines() == [
            '{"kind":"summary","registry":{"counters":{"cache.hit":2},'
            '"gauges":{},"histograms":{}},"t":0.0}'
        ]


class TestByteReproducibility:
    """Two identical runs under the tick clock emit identical bytes."""

    @staticmethod
    def _run(path):
        tracer = start_trace(path, ticks=True)
        try:
            with tracer.span("outer", n=3):
                tracer.event("decision", arm=5, duration=1.25)
                tracer.count("sim.runs", 3)
        finally:
            finish_trace()

    def test_identical_runs_identical_bytes(self, tmp_path):
        p1, p2 = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        self._run(p1)
        self._run(p2)
        assert p1.read_bytes() == p2.read_bytes()
        assert p1.read_bytes()  # non-trivial trace

    def test_wall_clock_trace_parses_but_differs(self, tmp_path):
        path = tmp_path / "w.jsonl"
        tracer = start_trace(path, ticks=False)
        try:
            with tracer.span("outer"):
                pass
        finally:
            finish_trace()
        records = read_trace(path)
        assert records[0]["clock"] == "wall"
        assert records[0]["wall_time"] > 0.0


class TestExceptionPaths:
    """A crashing run never truncates or loses buffered trace lines."""

    def test_sink_context_manager_closes_on_exception(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with pytest.raises(RuntimeError, match="boom"):
            with JsonlSink(path) as sink:
                for i in range(100):
                    sink.emit({"kind": "event", "i": i})
                raise RuntimeError("boom")
        # Everything emitted before the crash is on disk, parseable.
        records = read_trace(path)
        assert len(records) == 100
        assert records[-1] == {"kind": "event", "i": 99}

    def test_tracer_context_manager_emits_summary_on_exception(
            self, tmp_path):
        path = tmp_path / "t.jsonl"
        with pytest.raises(RuntimeError, match="boom"):
            with Tracer(sink=JsonlSink(path), clock=TickClock()) as tr:
                tr.header()
                tr.count("work.done", 7)
                raise RuntimeError("boom")
        records = read_trace(path)
        assert records[-1]["kind"] == "summary"
        assert records[-1]["registry"]["counters"]["work.done"] == 7

    def test_trace_session_restores_null_tracer_on_exception(
            self, tmp_path):
        path = tmp_path / "t.jsonl"
        with pytest.raises(RuntimeError, match="mid-run"):
            with trace_session(path, ticks=True) as tracer:
                # The injected mid-run exception of the satellite spec:
                # crash halfway through an instrumented campaign loop.
                for i in range(50):
                    tracer.event("decision", arm=i, duration=1.0)
                    if i == 24:
                        raise RuntimeError("mid-run failure")
        assert get_tracer() is NULL_TRACER
        records = read_trace(path)
        kinds = [r["kind"] for r in records]
        assert kinds[0] == "trace.start"
        assert kinds[-1] == "summary"
        assert kinds.count("decision") == 25

    def test_tracer_close_survives_failing_summary_emit(self, tmp_path):
        path = tmp_path / "t.jsonl"

        class ExplodingSink(JsonlSink):
            def emit(self, record):
                if record.get("kind") == "summary":
                    raise OSError("disk full")
                super().emit(record)

        sink = ExplodingSink(path)
        tracer = Tracer(sink=sink, clock=TickClock())
        tracer.header()
        tracer.event("decision", arm=1)
        with pytest.raises(OSError, match="disk full"):
            tracer.close()
        # The sink was still closed: pre-crash records reached the file.
        assert sink._fh is None
        records = read_trace(path)
        assert [r["kind"] for r in records] == ["trace.start", "decision"]

    def test_memory_sink_context_manager(self):
        with MemorySink() as sink:
            sink.emit({"kind": "a"})
        assert sink.records == [{"kind": "a"}]
