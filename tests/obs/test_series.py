"""Tests for the deterministic time-series store (obs/series.py)."""

import json

import pytest

from repro.obs.registry import Registry
from repro.obs.series import (
    DEFAULT_CAPACITY,
    Series,
    SeriesSink,
    SeriesStore,
    get_store,
    label_set,
    quantile,
    render_key,
    set_store,
    store_from_records,
    summarize,
)
from repro.obs.sink import MemorySink, encode_record


class TestQuantile:
    def test_empty(self):
        assert quantile([], 0.5) == 0

    def test_singleton(self):
        assert quantile([7.0], 0.0) == pytest.approx(7.0)
        assert quantile([7.0], 1.0) == pytest.approx(7.0)

    def test_nearest_rank(self):
        values = list(range(1, 101))  # 1..100
        assert quantile(values, 0.50) == pytest.approx(50.0)
        assert quantile(values, 0.95) == pytest.approx(95.0)
        assert quantile(values, 0.99) == pytest.approx(99.0)
        assert quantile(values, 1.0) == pytest.approx(100.0)

    def test_order_independent(self):
        assert quantile([3.0, 1.0, 2.0], 0.5) == quantile([1.0, 2.0, 3.0], 0.5)

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestSeries:
    def test_append_and_points(self):
        s = Series(capacity=4)
        for i in range(3):
            s.append(i, i * 10.0)
        assert len(s) == 3
        assert s.points() == [(0.0, 0.0), (1.0, 10.0), (2.0, 20.0)]
        assert s.last == pytest.approx(20.0)

    def test_eviction_keeps_newest(self):
        s = Series(capacity=3)
        for i in range(10):
            s.append(i, float(i))
        assert len(s) == 3
        assert s.values() == [7.0, 8.0, 9.0]
        assert s.seen == 10

    def test_window_slices_newest(self):
        s = Series(capacity=8)
        for i in range(5):
            s.append(i, float(i))
        assert s.values(window=2) == [3.0, 4.0]
        assert s.values(window=99) == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            Series(capacity=0)


class TestSummarize:
    def test_empty_window(self):
        out = summarize([])
        assert out["count"] == 0
        assert out["p99"] == 0
        assert out["rate"] == 0

    def test_aggregates(self):
        points = [(float(t), float(v)) for t, v in enumerate([4, 2, 8, 6])]
        out = summarize(points)
        assert out["count"] == 4
        assert out["mean"] == pytest.approx(5.0)
        assert out["min"] == pytest.approx(2.0)
        assert out["max"] == pytest.approx(8.0)
        assert out["p50"] == pytest.approx(4.0)

    def test_rate_is_first_to_last_per_tick(self):
        # Counter sampled at ticks 0/5/10 with values 0/10/30.
        out = summarize([(0.0, 0.0), (5.0, 10.0), (10.0, 30.0)])
        assert out["rate"] == pytest.approx(3.0)

    def test_rate_zero_span(self):
        out = summarize([(5.0, 1.0), (5.0, 9.0)])
        assert out["rate"] == 0


class TestSeriesStore:
    def test_label_order_independent(self):
        store = SeriesStore()
        store.record("m", 1.0, {"a": "x", "b": "y"}, tick=0)
        store.record("m", 2.0, {"b": "y", "a": "x"}, tick=1)
        assert len(store) == 1
        assert store.series("m", {"a": "x", "b": "y"}).values() == [1.0, 2.0]

    def test_window_missing_series(self):
        store = SeriesStore()
        assert store.window("nope")["count"] == 0

    def test_snapshot_sorted_and_json_stable(self):
        store = SeriesStore()
        store.record("zeta", 1.0, tick=0)
        store.record("alpha", 2.0, {"k": "v"}, tick=0)
        snap = store.snapshot()
        assert list(snap) == sorted(snap)
        assert "alpha{k=v}" in snap
        # Snapshot is byte-stable through canonical encoding.
        assert encode_record(snap) == encode_record(store.snapshot())

    def test_render_key(self):
        assert render_key("m") == "m"
        assert render_key("m", label_set({"b": 1, "a": 2})) == "m{a=2,b=1}"


class TestSeriesSink:
    def _decision(self, t, strategy="UCB", **extra):
        rec = {
            "kind": "decision", "t": t, "strategy": strategy,
            "iteration": t, "arm": 4, "duration": 10.0 + t,
            "overhead_s": 0.0,
        }
        rec.update(extra)
        return rec

    def test_forwards_to_inner_sink_unchanged(self):
        store = SeriesStore()
        inner = MemorySink()
        sink = SeriesSink(store, inner)
        rec = self._decision(1)
        sink.emit(rec)
        assert inner.records == [rec]

    def test_mirrors_decision_fields(self):
        store = SeriesStore()
        sink = SeriesSink(store)
        sink.emit(self._decision(1, acquisition=0.5, posterior_sd=2.0))
        sink.emit(self._decision(2))
        labels = {"strategy": "UCB"}
        assert store.series("decision.duration", labels).values() == [11.0, 12.0]
        assert store.series("decision.acquisition", labels).values() == [0.5]
        assert store.series("decision.posterior_sd", labels).values() == [2.0]

    def test_mirrors_cell_and_fault(self):
        store = SeriesStore()
        sink = SeriesSink(store)
        sink.emit({"kind": "cell", "t": 3, "scenario": "b", "strategy": "DC",
                   "total": 123.0})
        sink.emit({"kind": "fault", "t": 4, "scale": 2.0, "shift": 0.1})
        assert store.series(
            "cell.total", {"scenario": "b", "strategy": "DC"}
        ).values() == [123.0]
        assert store.series("fault.scale").values() == [2.0]
        assert store.series("fault.shift").values() == [0.1]

    def test_ignores_unknown_and_non_numeric(self):
        store = SeriesStore()
        sink = SeriesSink(store)
        sink.emit({"kind": "trace.start", "t": 0})
        sink.emit({"kind": "decision", "t": 1, "duration": "oops"})
        sink.emit({"kind": "decision", "duration": 1.0, "t": None})
        assert len(store) == 0

    def test_sample_registry(self):
        registry = Registry()
        registry.counter("hits").inc(3)
        registry.gauge("depth").set(2.0)
        registry.histogram("lat").observe(5.0)
        store = SeriesStore()
        sink = SeriesSink(store)
        sink.sample_registry(registry, tick=1)
        sink.sample_registry(registry, tick=2)
        assert store.series("counter.hits").values() == [3.0, 3.0]
        assert store.series("gauge.depth").values() == [2.0, 2.0]
        assert store.series("histogram.lat.count").values() == [1.0, 1.0]
        assert store.series("histogram.lat.mean").values() == [5.0, 5.0]

    def test_store_from_records_matches_live(self):
        records = [self._decision(t) for t in range(5)]
        live_store = SeriesStore()
        live = SeriesSink(live_store)
        for rec in records:
            live.emit(rec)
        replayed = store_from_records(records)
        assert encode_record(live_store.snapshot()) == encode_record(
            replayed.snapshot()
        )


class TestActiveStore:
    def test_default_none_and_restore(self):
        assert get_store() is None
        store = SeriesStore()
        prev = set_store(store)
        try:
            assert prev is None
            assert get_store() is store
        finally:
            set_store(prev)
        assert get_store() is None


def test_default_capacity_bounds_memory():
    store = SeriesStore()
    s = store.series("m")
    for i in range(DEFAULT_CAPACITY * 3):
        s.append(i, float(i))
    assert len(s) == DEFAULT_CAPACITY
    assert s.seen == DEFAULT_CAPACITY * 3
