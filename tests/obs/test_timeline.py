"""Unit tests for the timeline exporter (repro.obs.timeline).

Covers the analytics invariants the ISSUE pins as acceptance criteria
(critical path <= makespan, idleness in [0, 1]) both on hand-built
graphs and on stdlib-``random`` DAGs, plus the three export formats
(Chrome trace, Paje CSV, self-contained HTML).
"""

import json
import random

import pytest

from repro.obs import timeline as tl
from repro.platform import Cluster, NetworkModel, NodeType
from repro.runtime import DataRegistry, PerfModel, Simulator, TaskGraph

UNIT = NodeType(
    name="unit", site="SD", category="S", cpu_desc="", gpu_desc="",
    cpu_gflops=1.0, gpus=0, gpu_gflops=0.0, nic_gbps=8.0, memory_gb=1.0,
    cpu_slots=1,
)
WIDE = NodeType(
    name="wide", site="SD", category="S", cpu_desc="", gpu_desc="",
    cpu_gflops=2.0, gpus=0, gpu_gflops=0.0, nic_gbps=8.0, memory_gb=1.0,
    cpu_slots=2,
)
PM = PerfModel(efficiency={("t", "cpu"): 1.0}, overhead_s=0.0)
NET = NetworkModel(latency_s=0.0, efficiency=1.0)

PHASES = ("generation", "factorization", "solve")


def chain_run(n=3):
    """n tasks in a strict chain on one node, 1 s each."""
    cluster = Cluster([(UNIT, 2)], network=NET)
    g = TaskGraph(DataRegistry())
    a = g.registry.register("a", 8.0, home=0)
    g.submit("t", "generation", 1e9, writes=[a])
    for _ in range(n - 1):
        g.submit("t", "factorization", 1e9, reads=[a], writes=[a])
    res = Simulator(cluster, PM, trace=True).run(g)
    return cluster, g, res


def cross_node_run():
    """Two tasks on different nodes with one cross-node transfer."""
    cluster = Cluster([(UNIT, 2)], network=NET)
    g = TaskGraph(DataRegistry())
    a = g.registry.register("a", 1e9, home=0)
    b = g.registry.register("b", 8.0, home=1)
    g.submit("t", "generation", 1e9, writes=[a])
    g.submit("t", "factorization", 1e9, reads=[a], writes=[b])
    res = Simulator(cluster, PM, trace=True).run(g)
    return cluster, g, res


def random_run(rng, n_tasks=14, n_nodes=3):
    """A random DAG simulated on a small homogeneous cluster."""
    cluster = Cluster([(UNIT, n_nodes)], network=NET)
    g = TaskGraph(DataRegistry())
    handles = []
    for i in range(n_tasks):
        h = g.registry.register(
            f"h{i}", float(rng.randrange(1, 200)) * 1e6,
            home=rng.randrange(n_nodes),
        )
        k = min(len(handles), rng.randrange(0, 3))
        reads = rng.sample(handles, k) if k else []
        g.submit("t", rng.choice(PHASES),
                 float(rng.randrange(1, 20)) * 1e8,
                 reads=reads, writes=[h])
        handles.append(h)
    res = Simulator(cluster, PM, trace=True).run(g)
    return cluster, g, res


class TestCriticalPath:
    def test_chain_equals_makespan(self):
        cluster, g, res = chain_run(3)
        length, path = tl.critical_path(res, g)
        assert length == pytest.approx(res.makespan)
        assert length == pytest.approx(3.0)
        assert len(path) == 3

    def test_independent_tasks_short_path(self):
        cluster, g, res = cross_node_run()
        length, path = tl.critical_path(res, g)
        # Chain: generation + transfer wait + factorization; the path
        # only counts task time, so it is strictly below the makespan.
        assert length <= res.makespan + 1e-9
        assert path  # non-empty

    def test_per_phase_path_is_partial(self):
        cluster, g, res = chain_run(4)
        total, _ = tl.critical_path(res, g)
        gen, gen_path = tl.critical_path(res, g, phase="generation")
        fact, fact_path = tl.critical_path(res, g, phase="factorization")
        assert gen == pytest.approx(1.0)
        assert fact == pytest.approx(3.0)
        assert gen + fact == pytest.approx(total)
        assert all(t in {r.tid for r in res.task_records} for t in gen_path)

    def test_requires_trace(self):
        cluster = Cluster([(UNIT, 1)], network=NET)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 8.0, home=0)
        g.submit("t", "generation", 1e9, writes=[a])
        res = Simulator(cluster, PM).run(g)  # no trace
        with pytest.raises(ValueError, match="trace"):
            tl.critical_path(res, g)


class TestAnalyze:
    def test_summary_counts(self):
        cluster, g, res = cross_node_run()
        a = tl.analyze(res, cluster, g)
        assert a.task_count == 2
        assert a.transfer_count == 1
        assert a.phase_names == ["generation", "factorization"]
        assert a.phases[0].tasks == 1

    def test_idleness_bounds_and_busy_accounting(self):
        cluster, g, res = cross_node_run()
        a = tl.analyze(res, cluster, g)
        assert all(0.0 <= x <= 1.0 for x in a.node_idleness)
        assert all(0.0 <= lane.idle_frac <= 1.0 for lane in a.lanes)
        total_busy = sum(lane.busy_s for lane in a.lanes)
        expected = sum(r.end - r.start for r in res.task_records)
        assert total_busy == pytest.approx(expected)

    def test_nic_utilization_sides(self):
        cluster, g, res = cross_node_run()
        a = tl.analyze(res, cluster, g)
        assert a.node_send_util[0] > 0.0
        assert a.node_recv_util[1] > 0.0
        assert a.node_send_util[1] == 0.0
        assert a.node_recv_util[0] == 0.0
        assert all(0.0 <= u <= 1.0
                   for u in a.node_send_util + a.node_recv_util)

    def test_worker_lanes_cover_cpu_slots(self):
        cluster = Cluster([(WIDE, 1)], network=NET)
        g = TaskGraph(DataRegistry())
        for i in range(4):
            h = g.registry.register(f"h{i}", 8.0, home=0)
            g.submit("t", "generation", 1e9, writes=[h])
        res = Simulator(cluster, PM, trace=True).run(g)
        a = tl.analyze(res, cluster, g)
        assert {lane.worker for lane in a.lanes} == {0, 1}
        # Two slots at 1 GF/s each, 4 x 1 GF tasks: both lanes busy 2 s.
        assert all(lane.busy_s == pytest.approx(2.0) for lane in a.lanes)

    def test_overlap_keys_and_bounds(self):
        cluster, g, res = cross_node_run()
        a = tl.analyze(res, cluster, g)
        assert set(a.overlap_s) == {"generation+factorization"}
        for pair, sec in a.overlap_s.items():
            assert sec >= 0.0
            assert sec <= a.makespan + 1e-9

    def test_flat_metrics_schema(self):
        cluster, g, res = cross_node_run()
        metrics = tl.flat_metrics(tl.analyze(res, cluster, g))
        for key in ("makespan_s", "critical_path_s", "critical_path_frac",
                    "mean_idleness", "max_idleness", "comm_time_s",
                    "comm_bytes", "task_count", "transfer_count",
                    "phase_makespan_s.generation",
                    "phase_critical_path_s.factorization",
                    "overlap_s.generation+factorization"):
            assert key in metrics, key
        assert all(isinstance(v, float) for v in metrics.values())


class TestRandomDagProperties:
    """Stdlib-random property tests over many simulated DAGs."""

    @pytest.mark.parametrize("seed", range(20))
    def test_invariants(self, seed):
        rng = random.Random(seed)
        cluster, g, res = random_run(rng)
        a = tl.analyze(res, cluster, g)
        assert a.critical_path_s <= a.makespan + 1e-9
        assert 0.0 <= a.mean_idleness <= 1.0
        assert 0.0 <= a.max_idleness <= 1.0
        assert all(0.0 <= x <= 1.0 for x in a.node_idleness)
        assert all(0.0 <= lane.idle_frac <= 1.0 for lane in a.lanes)
        assert all(0.0 <= u <= 1.0
                   for u in a.node_send_util + a.node_recv_util)
        assert all(sec >= 0.0 for sec in a.overlap_s.values())
        for p in a.phases:
            assert p.critical_path_s <= a.critical_path_s + 1e-9
            assert p.span_s >= 0.0

    @pytest.mark.parametrize("seed", range(5))
    def test_exports_do_not_crash_and_agree(self, seed):
        rng = random.Random(1000 + seed)
        cluster, g, res = random_run(rng)
        a = tl.analyze(res, cluster, g)
        trace = tl.chrome_trace(res, cluster, a)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == len(res.task_records) + 2 * len(res.transfer_records)
        csv = tl.paje_csv(res, cluster)
        assert csv.count("\n") == (1 + len(res.task_records)
                                   + len(res.transfer_records))
        page = tl.render_html(a, res, cluster)
        assert "<svg" in page


class TestChromeTrace:
    def test_structure(self):
        cluster, g, res = cross_node_run()
        a = tl.analyze(res, cluster, g)
        trace = tl.chrome_trace(res, cluster, a)
        assert trace["displayTimeUnit"] == "ms"
        other = trace["otherData"]
        assert other["schema"] == tl.TIMELINE_SCHEMA_VERSION
        assert other["critical_path_s"] <= other["makespan_s"] + 1e-9
        metas = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        names = {e["name"] for e in metas}
        assert {"process_name", "process_sort_index", "thread_name"} <= names
        nic = [e for e in metas
               if e["name"] == "thread_name"
               and e["args"]["name"].startswith("nic-")]
        assert len(nic) == 2 * len(cluster)

    def test_durations_in_microseconds(self):
        cluster, g, res = chain_run(2)
        trace = tl.chrome_trace(res, cluster)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert all(e["dur"] == pytest.approx(1e6) for e in xs)

    def test_byte_identical_across_fresh_runs(self):
        c1, _, r1 = cross_node_run()
        c2, _, r2 = cross_node_run()
        first = tl.encode_json(tl.chrome_trace(r1, c1))
        second = tl.encode_json(tl.chrome_trace(r2, c2))
        assert first == second

    def test_round_trips_through_json(self):
        cluster, g, res = cross_node_run()
        trace = tl.chrome_trace(res, cluster)
        assert json.loads(tl.encode_json(trace)) == trace


class TestPajeCsv:
    def test_header_and_rows(self):
        cluster, g, res = cross_node_run()
        csv = tl.paje_csv(res, cluster)
        lines = csv.splitlines()
        assert lines[0] == tl.PAJE_HEADER
        states = [l for l in lines if l.startswith("State,")]
        links = [l for l in lines if l.startswith("Link,")]
        assert len(states) == len(res.task_records)
        assert len(links) == len(res.transfer_records)
        assert all(len(l.split(",")) == 8 for l in lines[1:])


class TestHtmlReport:
    def test_self_contained(self):
        cluster, g, res = cross_node_run()
        a = tl.analyze(res, cluster, g)
        page = tl.render_html(a, res, cluster, title="test run")
        lower = page.lower()
        assert "<svg" in lower
        assert "<script" not in lower
        assert "http" not in lower  # no external resources at all
        assert "test run" in page
        assert "generation" in page and "factorization" in page

    def test_phase_colors_stable(self):
        assert tl.phase_color("generation", ["generation"]) == "#59a14f"
        custom = tl.phase_color("warmup", ["warmup", "cooldown"])
        assert custom == tl.phase_color("warmup", ["warmup", "cooldown"])
        assert custom.startswith("#")
