"""Opt-in series-store instrumentation of the harness and campaigns.

The store contract mirrors the tracer's: feeding is **opt-in** (a
module-global that defaults to ``None``), **inert** (experiment outputs
are bit-identical with the store on or off) and **worker-count
independent** (the fed points are keyed by deterministic input order).
"""

import numpy as np
import pytest

from repro.evaluate import plan_cells, run_cells
from repro.evaluate.faults_campaign import run_campaign
from repro.faults import canned_schedules
from repro.measure import synthetic_bank
from repro.obs import SeriesStore, get_store, set_store

ITERATIONS = 20
REPS = 2


@pytest.fixture()
def bank():
    return synthetic_bank(
        f=lambda n: 12.0 + 24.0 / n + 0.8 * n,
        actions=range(2, 11),
        noise_sd=0.3,
        seed=3,
        label="sfeed",
    )


@pytest.fixture(autouse=True)
def no_store_leak():
    """Every test starts and ends with the store disabled."""
    set_store(None)
    yield
    set_store(None)


def _run(bank, workers, store=None):
    previous = set_store(store)
    try:
        cells = plan_cells(["sfeed"], ["DC", "UCB"], REPS,
                           include_baselines=False)
        return run_cells({"sfeed": bank}, cells, ITERATIONS,
                         workers=workers)
    finally:
        set_store(previous)


class TestHarnessFeed:
    def test_default_feeds_nothing(self, bank):
        _run(bank, workers=1)
        assert get_store() is None

    def test_cell_totals_recorded(self, bank):
        store = SeriesStore()
        results = _run(bank, workers=1, store=store)
        series = store.series("harness.cell_total",
                              {"scenario": "sfeed", "strategy": "DC"})
        assert len(series) == REPS
        recorded = sorted(series.values())
        expected = sorted(r.total for r in results
                          if r.cell.strategy == "DC")
        assert recorded == pytest.approx(expected)

    def test_feed_is_worker_count_independent(self, bank):
        s1, s2 = SeriesStore(), SeriesStore()
        _run(bank, workers=1, store=s1)
        _run(bank, workers=2, store=s2)
        assert s1.keys() == s2.keys()
        for name, labels in s1.keys():
            assert (s1.series(name, dict(labels)).points()
                    == s2.series(name, dict(labels)).points())

    def test_feeding_is_inert(self, bank):
        plain = _run(bank, workers=1)
        fed = _run(bank, workers=1, store=SeriesStore())
        for a, b in zip(plain, fed):
            assert a.total == b.total
            assert np.array_equal(a.chosen, b.chosen)
            assert np.array_equal(a.durations, b.durations)


class TestCampaignFeed:
    def test_campaign_rows_mirrored(self, bank):
        store = SeriesStore()
        schedules = {"crash": canned_schedules(
            bank.n_total, ITERATIONS, seed=0)["crash"]}
        previous = set_store(store)
        try:
            result = run_campaign(
                bank, schedules=schedules, strategies=["UCB"],
                iterations=ITERATIONS, reps=REPS,
            )
        finally:
            set_store(previous)
        regret = store.series("campaign.regret",
                              {"schedule": "crash", "strategy": "UCB"})
        total = store.series("campaign.total",
                             {"schedule": "crash", "strategy": "UCB"})
        assert len(regret) == 1 and len(total) == 1
        assert regret.last == pytest.approx(result.rows[0].mean_regret)
        assert total.last == pytest.approx(result.rows[0].mean_total)
