"""Forensics join logic: properties, golden table, determinism.

The golden table over the canned ``crash``/``interference`` schedules is
committed at ``tests/goldens/forensics_crash_interference.txt``;
regenerate after an intended change::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/obs/test_forensics.py
"""

import os
from pathlib import Path

import numpy as np
import pytest

from repro.faults.models import (
    FaultSchedule,
    InterferenceBurst,
    NodeCrash,
    STATIONARY,
    canned_schedules,
)
from repro.obs.forensics import (
    DEFAULT_HORIZON,
    DetectorConfig,
    PAGE_HINKLEY,
    SLIDING_WINDOW,
    analyze_detector,
    best_config,
    default_configs,
    duration_stream,
    fire_detector,
    forensics_metrics,
    join_alarms,
    render_forensics_table,
    render_resilience_table,
    render_sweep_table,
    ResilienceConfig,
    best_resilience,
    resilience_grid,
    result_to_dict,
    sweep_detectors,
    sweep_grid,
    sweep_resilience,
    truth_change_points,
)
from repro.measure.bank import synthetic_bank
from repro.strategies.base import ActionSpace

GOLDEN = Path(__file__).parent.parent / "goldens" / \
    "forensics_crash_interference.txt"

ITERATIONS = 60
REPS = 3


@pytest.fixture(scope="module")
def bank():
    # Low noise so fault shifts dominate; U-shaped duration curve.
    return synthetic_bank(
        lambda n: 20.0 - 1.5 * n + 0.06 * n * n,
        actions=tuple(range(1, 17)),
        noise_sd=0.2,
        seed=7,
    )


@pytest.fixture(scope="module")
def schedules(bank):
    return canned_schedules(bank.n_total, ITERATIONS, seed=0)


class TestTruthChangePoints:
    def test_stationary_has_none(self):
        assert truth_change_points(STATIONARY, ITERATIONS) == []

    def test_crash_onset_only(self):
        schedule = FaultSchedule(
            label="c", faults=(NodeCrash(node=4, start=20),))
        assert truth_change_points(schedule, ITERATIONS) == [20]

    def test_burst_onset_and_clearing(self):
        schedule = FaultSchedule(
            label="i",
            faults=(InterferenceBurst(magnitude_s=1.0, start=20, end=40),))
        assert truth_change_points(schedule, ITERATIONS) == [20, 40]

    def test_fault_active_at_zero_is_baseline(self):
        schedule = FaultSchedule(
            label="c", faults=(NodeCrash(node=4, start=0),))
        assert truth_change_points(schedule, ITERATIONS) == []


class TestJoin:
    def test_perfect_match(self):
        join = join_alarms([20, 40], [21, 43])
        assert join.matches == ((20, 21), (40, 43))
        assert join.false_alarms == ()
        assert join.missed == ()
        assert join.latencies == (1, 3)

    def test_early_alarm_is_false(self):
        join = join_alarms([20], [10])
        assert join.false_alarms == (10,)
        assert join.missed == (20,)

    def test_late_alarm_outside_horizon_is_false(self):
        join = join_alarms([20], [20 + DEFAULT_HORIZON])
        assert join.false_alarms == (20 + DEFAULT_HORIZON,)
        assert join.missed == (20,)

    def test_one_alarm_claims_one_change_point(self):
        # Two alarms inside one horizon: first claims the cp, second is
        # a false alarm (the detector double-fired).
        join = join_alarms([20], [21, 24])
        assert join.matches == ((20, 21),)
        assert join.false_alarms == (24,)

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            join_alarms([1], [1], horizon=0)


class TestProperties:
    """The satellite property suite over joins and pooled scores."""

    def test_precision_recall_in_unit_interval(self, bank, schedules):
        for schedule in schedules.values():
            for config in default_configs():
                r = analyze_detector(bank, schedule, config,
                                     ITERATIONS, REPS)
                assert 0.0 <= r.precision <= 1.0
                assert 0.0 <= r.recall <= 1.0
                assert 0.0 <= r.f1 <= 1.0
                assert r.false_alarm_rate >= 0.0

    def test_zero_fault_schedule_all_firings_false(self, bank):
        for config in default_configs():
            r = analyze_detector(bank, STATIONARY, config,
                                 ITERATIONS, REPS)
            assert r.change_points == 0
            assert r.detections == 0
            assert r.false_alarms == r.alarms
            assert r.recall == 1.0  # vacuous: nothing to detect

    def test_detection_latency_non_negative(self, bank, schedules):
        for schedule in schedules.values():
            for config in default_configs():
                r = analyze_detector(bank, schedule, config,
                                     ITERATIONS, REPS)
                assert all(lat >= 0 for lat in r.latencies)
                assert r.mean_latency >= 0.0

    def test_random_joins_stay_consistent(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            cps = sorted(rng.choice(ITERATIONS, size=3, replace=False))
            alarms = sorted(rng.choice(ITERATIONS, size=4, replace=False))
            join = join_alarms(cps, alarms)
            assert len(join.matches) + len(join.missed) == len(cps)
            assert len(join.matches) + len(join.false_alarms) == len(alarms)
            assert all(lat >= 0 for lat in join.latencies)


class TestAnalyze:
    def test_crash_detected_by_both_families(self, bank, schedules):
        for config in default_configs():
            r = analyze_detector(bank, schedules["crash"], config,
                                 ITERATIONS, REPS)
            assert r.change_points == 1
            assert r.recall > 0.0, config.key()
            assert r.mean_latency >= 0.0

    def test_stream_is_deterministic(self, bank, schedules):
        a = duration_stream(bank, schedules["crash"], ITERATIONS, rep=1)
        b = duration_stream(bank, schedules["crash"], ITERATIONS, rep=1)
        assert np.array_equal(a, b)
        c = duration_stream(bank, schedules["crash"], ITERATIONS, rep=2)
        assert not np.array_equal(a, c)

    def test_cooldown_thins_alarms(self, bank, schedules):
        stream = duration_stream(bank, schedules["compound"], ITERATIONS)
        free = fire_detector(
            DetectorConfig(family=SLIDING_WINDOW, window=5, threshold=2.0,
                           cooldown=0), stream)
        cooled = fire_detector(
            DetectorConfig(family=SLIDING_WINDOW, window=5, threshold=2.0,
                           cooldown=10), stream)
        assert len(cooled) <= len(free)
        assert all(b - a >= 10 for a, b in zip(cooled, cooled[1:]))

    def test_result_to_dict_plain(self, bank, schedules):
        r = analyze_detector(bank, schedules["crash"], default_configs()[0],
                             ITERATIONS, REPS)
        body = result_to_dict(r)
        assert body["schedule"] == "crash"
        assert isinstance(body["f1"], float)

    def test_metrics_keyed_by_family(self, bank, schedules):
        results = [
            analyze_detector(bank, schedules["crash"], config,
                             ITERATIONS, REPS)
            for config in default_configs()
        ]
        metrics = forensics_metrics(results)
        assert "forensics.crash.page-hinkley.f1" in metrics
        assert "forensics.crash.sliding-window.recall" in metrics


class TestSweep:
    def test_grid_covers_both_families(self):
        grid = sweep_grid()
        families = {c.family for c in grid}
        assert families == {PAGE_HINKLEY, SLIDING_WINDOW}
        assert len(grid) == len(set(c.key() for c in grid))

    def test_sweep_ranked_and_deterministic(self, bank, schedules):
        swept = [schedules["crash"], schedules["interference"]]
        grid = default_configs() + [
            DetectorConfig(family=PAGE_HINKLEY, threshold=6.0, delta=0.25)]
        a = sweep_detectors(bank, swept, ITERATIONS, REPS, grid=grid)
        b = sweep_detectors(bank, swept, ITERATIONS, REPS, grid=grid)
        assert [r.config.key() for r in a] == [r.config.key() for r in b]
        f1s = [row.mean_f1 for row in a]
        assert f1s == sorted(f1s, reverse=True)
        assert render_sweep_table(a) == render_sweep_table(b)
        assert best_config(a) is a[0].config
        assert best_config(a, SLIDING_WINDOW).family == SLIDING_WINDOW

    def test_best_config_unknown_family(self, bank, schedules):
        rows = sweep_detectors(bank, [schedules["crash"]], ITERATIONS, 1,
                               grid=default_configs())
        with pytest.raises(ValueError):
            best_config(rows, "nope")


class TestResilienceSweep:
    def test_grid_is_the_full_product(self):
        grid = resilience_grid("UCB")
        keys = [c.key() for c in grid]
        assert len(keys) == len(set(keys)) == 9
        assert all(c.inner == "UCB" for c in grid)
        assert {c.window for c in grid} == {10, 20, 40}
        assert {c.cooldown for c in grid} == {4, 8, 16}

    def test_config_builds_a_registered_resilient(self):
        from repro.faults.resilience import ResilientStrategy

        config = ResilienceConfig(inner="UCB", window=40, cooldown=16)
        space = ActionSpace(actions=(1, 2, 4, 8, 16), n_total=16)
        strategy = config.build(space, seed=3)
        assert isinstance(strategy, ResilientStrategy)
        assert strategy.window == 40
        assert strategy.cooldown == 16
        assert strategy.seed == 3

    def test_sweep_ranked_numeric_and_deterministic(self, bank, schedules):
        grid = (
            ResilienceConfig(window=10, cooldown=16),
            ResilienceConfig(window=10, cooldown=4),
        )
        a = sweep_resilience(bank, [schedules["crash"]], iterations=20,
                             reps=1, grid=grid)
        b = sweep_resilience(bank, [schedules["crash"]], iterations=20,
                             reps=1, grid=grid)
        assert [r.config.key() for r in a] == [r.config.key() for r in b]
        regrets = [row.mean_regret for row in a]
        assert regrets == sorted(regrets)
        # Equal regrets rank by (window, cooldown) numerically, so c=4
        # precedes c=16 despite "16" < "4" lexicographically.
        if regrets[0] == regrets[1]:
            assert a[0].config.cooldown == 4
        assert render_resilience_table(a) == render_resilience_table(b)
        assert best_resilience(a) is a[0].config
        assert render_resilience_table(a, top=1).count("res(") == 1

    def test_best_resilience_empty(self):
        with pytest.raises(ValueError):
            best_resilience([])


class TestGolden:
    def test_crash_interference_table_matches_golden(self, bank, schedules):
        results = [
            analyze_detector(bank, schedules[name], config,
                             ITERATIONS, REPS)
            for name in ("crash", "interference")
            for config in default_configs()
        ]
        out = render_forensics_table(results) + "\n"
        if os.environ.get("REPRO_REGEN_GOLDENS"):
            GOLDEN.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN.write_text(out)
            pytest.skip(f"regenerated {GOLDEN}")
        assert GOLDEN.exists(), (
            f"golden missing; run with REPRO_REGEN_GOLDENS=1 to create "
            f"{GOLDEN}"
        )
        assert out == GOLDEN.read_text()
