"""Dashboard rendering: self-contained, deterministic, composable."""

import pytest

from repro.faults.models import canned_schedules
from repro.measure.bank import synthetic_bank
from repro.obs.convergence import analyze_convergence
from repro.obs.dashboard import render_dashboard
from repro.obs.forensics import (
    analyze_detector,
    default_configs,
    duration_stream,
    fire_detector,
)
from repro.obs.series import SeriesStore
from repro.obs.slo import SloRule, evaluate_rules

ITERATIONS = 40
REPS = 2


@pytest.fixture(scope="module")
def bank():
    return synthetic_bank(
        lambda n: 20.0 - 1.5 * n + 0.06 * n * n,
        actions=tuple(range(1, 17)),
        noise_sd=0.2,
        seed=5,
    )


@pytest.fixture(scope="module")
def everything(bank):
    schedules = canned_schedules(bank.n_total, ITERATIONS, seed=0)
    convergence = analyze_convergence(
        bank, ["DC", "GP-discontinuous"], ITERATIONS, REPS)
    forensics, alarms = [], {}
    for name in ("crash", "interference"):
        for config in default_configs():
            forensics.append(analyze_detector(
                bank, schedules[name], config, ITERATIONS, REPS))
            stream = duration_stream(bank, schedules[name], ITERATIONS, 0)
            alarms[f"{name}/{config.key()}"] = fire_detector(config, stream)
    store = SeriesStore()
    for t in range(20):
        store.record("decision.overhead", 0.01 * t,
                     {"strategy": "DC"}, tick=t)
    verdicts = evaluate_rules(store, [
        SloRule(name="ok-rule", series="decision.overhead",
                labels={"strategy": "DC"}, agg="p99", op="<=", value=1.0),
        SloRule(name="bad-rule", series="decision.overhead",
                labels={"strategy": "DC"}, agg="max", op="<=", value=0.01),
    ])
    return dict(convergence=convergence, forensics=forensics,
                schedules=schedules, alarm_indices=alarms,
                slo_verdicts=verdicts, store=store)


class TestRendering:
    def test_all_sections_present(self, everything):
        page = render_dashboard(**everything)
        assert page.startswith("<!DOCTYPE html>")
        assert "Convergence (cumulative regret)" in page
        assert "Fault forensics" in page
        assert "SLO verdicts" in page
        assert "<h2>Series</h2>" in page
        assert "GP-discontinuous" in page
        assert "VIOLATED" in page and ">ok<" in page

    def test_self_contained(self, everything):
        page = render_dashboard(**everything)
        assert "<script" not in page
        assert "http://" not in page and "https://" not in page
        assert "<svg" in page

    def test_byte_identical_rerender(self, everything):
        assert render_dashboard(**everything) == render_dashboard(
            **everything)

    def test_empty_dashboard(self):
        page = render_dashboard()
        assert "no analytics sections supplied" in page

    def test_sections_optional(self, everything):
        page = render_dashboard(convergence=everything["convergence"])
        assert "Convergence" in page
        assert "Fault forensics" not in page

    def test_title_escaped(self):
        page = render_dashboard(title="<b>x&y</b>")
        assert "<b>x&y</b>" not in page
        assert "&lt;b&gt;x&amp;y&lt;/b&gt;" in page
