"""Unit tests for the perf ledger and regression gate (repro.obs.ledger)."""

import json

import pytest

from repro.obs import TickClock
from repro.obs import ledger as lg

METRICS = {
    "makespan_s": 10.0,
    "critical_path_s": 6.0,
    "mean_idleness": 0.4,
    "comm_time_s": 2.0,
    "phase_makespan_s.factorization": 5.0,
    "task_count": 100.0,
    "bench.speedup": 3.0,
}
CONFIG = {"scenario": "b", "workload": "synth101", "tiles": 8,
          "n_fact": 4, "n_gen": 4, "nodes": 4}


class TestGating:
    def test_gated_metric_set(self):
        assert lg.is_gated("makespan_s")
        assert lg.is_gated("phase_makespan_s.solve")
        assert not lg.is_gated("task_count")
        assert not lg.is_gated("bench.speedup")
        assert not lg.is_gated("critical_path_frac")

    def test_identical_metrics_pass(self):
        checks = lg.compare_metrics(METRICS, METRICS)
        assert checks
        assert not any(c.regressed for c in checks)
        assert all(c.rel_change == 0.0 for c in checks)

    def test_twenty_pct_makespan_regression_trips(self):
        current = dict(METRICS, makespan_s=METRICS["makespan_s"] * 1.2)
        checks = lg.compare_metrics(current, METRICS)
        tripped = [c for c in checks if c.regressed]
        assert [c.metric for c in tripped] == ["makespan_s"]
        assert tripped[0].rel_change == pytest.approx(0.2)

    def test_improvement_never_trips(self):
        current = dict(METRICS, makespan_s=1.0, comm_time_s=0.0)
        assert not any(c.regressed
                       for c in lg.compare_metrics(current, METRICS))

    def test_non_gated_increase_is_informational(self):
        current = dict(METRICS, task_count=1000.0, **{"bench.speedup": 0.1})
        checks = lg.compare_metrics(current, METRICS)
        assert not any(c.regressed for c in checks)

    def test_threshold_is_configurable(self):
        current = dict(METRICS, makespan_s=METRICS["makespan_s"] * 1.2)
        assert not any(c.regressed for c in
                       lg.compare_metrics(current, METRICS, threshold=0.3))
        assert any(c.regressed for c in
                   lg.compare_metrics(current, METRICS, threshold=0.05))

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            lg.compare_metrics(METRICS, METRICS, threshold=-0.1)

    def test_one_sided_metrics_skipped(self):
        current = dict(METRICS, **{"new_metric": 5.0})
        baseline = dict(METRICS, **{"old_metric": 5.0})
        compared = {c.metric for c in lg.compare_metrics(current, baseline)}
        assert "new_metric" not in compared
        assert "old_metric" not in compared

    def test_gated_only_filter(self):
        checks = lg.compare_metrics(METRICS, METRICS, gated_only=True)
        assert all(c.gated for c in checks)


class TestLedger:
    def test_append_and_read_round_trip(self, tmp_path):
        ledger = lg.PerfLedger(tmp_path / "ledger.jsonl")
        assert ledger.entries() == []
        entry = lg.make_entry("b", METRICS, config=CONFIG, note="n1",
                              clock=TickClock())
        stamped = ledger.append(entry)
        assert stamped["schema"] == lg.LEDGER_SCHEMA_VERSION
        (read,) = ledger.entries()
        assert read["metrics"] == METRICS
        assert read["config"] == CONFIG
        assert read["note"] == "n1"

    def test_append_only(self, tmp_path):
        ledger = lg.PerfLedger(tmp_path / "ledger.jsonl")
        for i in range(3):
            ledger.append(lg.make_entry("b", dict(METRICS, makespan_s=float(i)),
                                        clock=TickClock()))
        assert [e["metrics"]["makespan_s"]
                for e in ledger.entries()] == [0.0, 1.0, 2.0]

    def test_newer_schema_entries_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        future = {"schema": lg.LEDGER_SCHEMA_VERSION + 1, "label": "b",
                  "metrics": {}}
        path.write_text(json.dumps(future) + "\n\n")
        assert lg.PerfLedger(path).entries() == []

    def test_baseline_matches_label_and_config(self, tmp_path):
        ledger = lg.PerfLedger(tmp_path / "ledger.jsonl")
        other_cfg = dict(CONFIG, tiles=40)
        ledger.append(lg.make_entry("b", {"makespan_s": 1.0},
                                    config=other_cfg, clock=TickClock()))
        ledger.append(lg.make_entry("b", {"makespan_s": 2.0},
                                    config=CONFIG, clock=TickClock()))
        ledger.append(lg.make_entry("c", {"makespan_s": 3.0},
                                    config=CONFIG, clock=TickClock()))
        base = ledger.baseline("b", config=CONFIG)
        assert base["metrics"]["makespan_s"] == 2.0
        # An 8-tile run never gates against a 40-tile baseline.
        assert ledger.baseline("b", config=dict(CONFIG, tiles=99)) is None
        assert ledger.baseline("zz") is None

    def test_baseline_takes_most_recent(self, tmp_path):
        ledger = lg.PerfLedger(tmp_path / "ledger.jsonl")
        ledger.append(lg.make_entry("b", {"makespan_s": 1.0},
                                    config=CONFIG, clock=TickClock()))
        ledger.append(lg.make_entry("b", {"makespan_s": 9.0},
                                    config=CONFIG, clock=TickClock()))
        assert ledger.baseline("b", config=CONFIG)["metrics"] == {
            "makespan_s": 9.0
        }


class TestCheckAgainstLedger:
    def test_no_baseline_is_non_blocking(self, tmp_path):
        report = lg.check_against_ledger(
            lg.PerfLedger(tmp_path / "none.jsonl"), "b", METRICS,
            config=CONFIG,
        )
        assert not report.baseline_found
        assert report.ok
        assert "non-blocking" in lg.render_check_report(report)

    def test_pass_then_fail_on_injected_regression(self, tmp_path):
        ledger = lg.PerfLedger(tmp_path / "ledger.jsonl")
        ledger.append(lg.make_entry("b", METRICS, config=CONFIG,
                                    clock=TickClock()))
        ok = lg.check_against_ledger(ledger, "b", METRICS, config=CONFIG)
        assert ok.baseline_found and ok.ok
        assert "PASS" in lg.render_check_report(ok)

        slow = dict(METRICS, makespan_s=METRICS["makespan_s"] * 1.2)
        bad = lg.check_against_ledger(ledger, "b", slow, config=CONFIG)
        assert bad.baseline_found and not bad.ok
        assert [c.metric for c in bad.regressions] == ["makespan_s"]
        rendered = lg.render_check_report(bad)
        assert "FAIL" in rendered and "makespan_s" in rendered


class TestBenchMerge:
    def test_merges_wall_clock_aggregates(self, tmp_path):
        bench = tmp_path / "BENCH_harness.json"
        bench.write_text(json.dumps({
            "speedup": 3.5, "serial_seconds": 7.0, "parallel_seconds": 2.0,
            "cache": {"hit_rate": 0.9},
        }))
        merged = lg.merge_bench_metrics({"makespan_s": 1.0}, bench)
        assert merged["bench.speedup"] == 3.5
        assert merged["bench.cache_hit_rate"] == 0.9
        assert merged["makespan_s"] == 1.0

    def test_missing_or_garbage_report_merges_nothing(self, tmp_path):
        base = {"makespan_s": 1.0}
        assert lg.merge_bench_metrics(base, tmp_path / "nope.json") == base
        garbage = tmp_path / "bad.json"
        garbage.write_text("{not json")
        assert lg.merge_bench_metrics(base, garbage) == base


class TestRootReport:
    def test_writes_canonical_payload(self, tmp_path):
        out = lg.write_root_report("b", METRICS, config=CONFIG,
                                   path=tmp_path / "BENCH_timeline.json",
                                   extra={"recorded_at": 0.0})
        payload = json.loads(out.read_text())
        assert payload["schema"] == lg.LEDGER_SCHEMA_VERSION
        assert payload["label"] == "b"
        assert payload["metrics"] == METRICS
        assert payload["config"] == CONFIG
        assert payload["recorded_at"] == 0.0
