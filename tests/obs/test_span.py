"""Span nesting, exception safety, and the disabled tracer's no-ops."""

import pytest

from repro.obs import (
    NULL_TRACER,
    MemorySink,
    TickClock,
    Tracer,
    get_tracer,
    scoped,
)


def tick_tracer():
    return Tracer(sink=MemorySink(), clock=TickClock())


class TestSpan:
    def test_records_start_end_duration(self):
        tr = tick_tracer()
        with tr.span("work", tiles=8):
            pass
        (rec,) = tr.sink.records
        assert rec["kind"] == "span"
        assert rec["name"] == "work"
        assert rec["t0"] == 0.0 and rec["t1"] == 1.0 and rec["dur"] == 1.0
        assert rec["ok"] is True
        assert rec["tiles"] == 8

    def test_nesting_records_parent(self):
        tr = tick_tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        inner, outer = tr.sink.records
        assert inner["name"] == "inner" and inner["parent"] == "outer"
        assert outer["name"] == "outer" and outer["parent"] is None

    def test_exception_marks_not_ok_and_propagates(self):
        tr = tick_tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tr.span("fragile"):
                raise RuntimeError("boom")
        (rec,) = tr.sink.records
        assert rec["ok"] is False
        # The span stack unwound: a following span has no parent.
        with tr.span("after"):
            pass
        assert tr.sink.records[-1]["parent"] is None

    def test_exception_in_nested_span_unwinds_stack(self):
        tr = tick_tracer()
        with pytest.raises(ValueError):
            with tr.span("outer"):
                with tr.span("inner"):
                    raise ValueError
        inner, outer = tr.sink.records
        assert inner["ok"] is False and inner["parent"] == "outer"
        assert outer["ok"] is False and outer["parent"] is None


class TestDisabledTracer:
    def test_span_is_reusable_noop(self):
        s1 = NULL_TRACER.span("a", big=1)
        s2 = NULL_TRACER.span("b")
        assert s1 is s2  # the shared no-op span: zero allocation
        with s1:
            pass

    def test_event_and_count_are_noops(self):
        NULL_TRACER.event("decision", arm=3)
        NULL_TRACER.count("cache.hit")
        assert len(NULL_TRACER.registry) == 0

    def test_disabled_span_swallows_nothing(self):
        with pytest.raises(KeyError):
            with NULL_TRACER.span("x"):
                raise KeyError("still visible")


class TestScoped:
    def test_scoped_swaps_and_restores(self):
        before = get_tracer()
        tr = tick_tracer()
        with scoped(tr):
            assert get_tracer() is tr
        assert get_tracer() is before

    def test_scoped_restores_on_exception(self):
        before = get_tracer()
        with pytest.raises(RuntimeError):
            with scoped(tick_tracer()):
                raise RuntimeError
        assert get_tracer() is before
