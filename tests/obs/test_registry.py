"""Registry semantics: get-or-create, kind uniqueness, snapshots."""

import pytest

from repro.obs import Registry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = Registry()
        c = reg.counter("cache.hit")
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_same_name_same_instrument(self):
        reg = Registry()
        assert reg.counter("x") is reg.counter("x")

    def test_negative_delta_rejected(self):
        with pytest.raises(ValueError, match="only go up"):
            Registry().counter("x").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Registry().gauge("queue.depth")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_summary_statistics(self):
        h = Registry().histogram("dur")
        for v in (2.0, 8.0, 5.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 15.0
        assert h.min == 2.0
        assert h.max == 8.0
        assert h.mean == 5.0

    def test_empty_mean_is_zero(self):
        assert Registry().histogram("dur").mean == 0.0

    def test_quantiles_nearest_rank(self):
        h = Registry().histogram("dur")
        for v in range(1, 101):  # 1..100
            h.observe(float(v))
        assert h.quantile(0.50) == 50.0
        assert h.quantile(0.95) == 95.0
        assert h.quantile(0.99) == 99.0

    def test_empty_quantile_is_zero(self):
        assert Registry().histogram("dur").quantile(0.99) == 0.0

    def test_quantile_window_is_bounded(self):
        from repro.obs.registry import HISTOGRAM_SAMPLE_CAPACITY

        h = Registry().histogram("dur")
        n = HISTOGRAM_SAMPLE_CAPACITY * 2
        for v in range(n):
            h.observe(float(v))
        # Ring keeps the newest window; the old half is gone.
        assert h.quantile(0.0) == float(HISTOGRAM_SAMPLE_CAPACITY)
        assert h.count == n


class TestRegistry:
    def test_name_means_one_kind(self):
        reg = Registry()
        reg.counter("x")
        with pytest.raises(ValueError, match="different kind"):
            reg.gauge("x")
        with pytest.raises(ValueError, match="different kind"):
            reg.histogram("x")

    def test_len_counts_all_instruments(self):
        reg = Registry()
        reg.counter("a")
        reg.gauge("b")
        reg.histogram("c")
        assert len(reg) == 3

    def test_snapshot_is_sorted_and_plain(self):
        reg = Registry()
        reg.counter("zeta").inc(2)
        reg.counter("alpha").inc(1)
        reg.gauge("g").set(7)
        reg.histogram("h").observe(3.0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["alpha", "zeta"]
        assert snap["counters"]["zeta"] == 2
        assert snap["gauges"] == {"g": 7.0}
        assert snap["histograms"]["h"] == {
            "count": 1, "total": 3.0, "min": 3.0, "max": 3.0, "mean": 3.0,
            "p50": 3.0, "p95": 3.0, "p99": 3.0,
        }

    def test_snapshot_empty_histogram_min_max_zero(self):
        reg = Registry()
        reg.histogram("h")
        snap = reg.snapshot()["histograms"]["h"]
        assert snap["min"] == 0.0 and snap["max"] == 0.0
