"""Tests for the declarative SLO rule engine (obs/slo.py)."""

import json

import pytest

from repro.obs.series import SeriesStore
from repro.obs.slo import (
    SLO_RULES_SCHEMA,
    SLO_SCHEMA_VERSION,
    SloRule,
    default_rules,
    evaluate_rule,
    evaluate_rules,
    render_verdicts,
    rules_from_json,
    validate_document,
)


def make_store():
    store = SeriesStore()
    for t in range(10):
        store.record("lat", float(t), tick=t)            # 0..9 rising
        store.record("sd", 10.0 - t, tick=t)             # falling
        store.record("cost", 5.0, {"tenant": "a"}, tick=t)
    return store


class TestValidator:
    def test_valid_document(self):
        doc = {"rules": [{"name": "r", "series": "lat", "kind": "threshold",
                          "op": "<=", "value": 1.0}]}
        assert validate_document(doc, SLO_RULES_SCHEMA) == []

    def test_missing_required(self):
        doc = {"rules": [{"name": "r"}]}
        problems = validate_document(doc, SLO_RULES_SCHEMA)
        assert any("series" in p for p in problems)
        assert any("value" in p for p in problems)

    def test_wrong_types_and_enum(self):
        doc = {"rules": [{"name": 3, "series": "lat", "kind": "nope",
                          "op": "<=", "value": "high"}]}
        problems = validate_document(doc, SLO_RULES_SCHEMA)
        assert any("expected string" in p for p in problems)
        assert any("not one of" in p for p in problems)
        assert any("expected number" in p for p in problems)

    def test_top_level_not_object(self):
        assert validate_document([], SLO_RULES_SCHEMA)

    def test_bool_is_not_a_number(self):
        doc = {"rules": [{"name": "r", "series": "s", "kind": "threshold",
                          "op": "<=", "value": True}]}
        assert validate_document(doc, SLO_RULES_SCHEMA)


class TestRuleConstruction:
    def test_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            SloRule(name="r", series="s", kind="bogus")

    def test_bad_agg(self):
        with pytest.raises(ValueError, match="aggregate"):
            SloRule(name="r", series="s", agg="p42")

    def test_bad_op(self):
        with pytest.raises(ValueError, match="operator"):
            SloRule(name="r", series="s", op="<")

    def test_rules_from_json_round_trip(self):
        text = json.dumps({"rules": [
            {"name": "r1", "series": "lat", "kind": "threshold",
             "agg": "p95", "op": "<=", "value": 8.0, "window": 5},
            {"name": "r2", "series": "lat", "kind": "budget-burn",
             "op": "<=", "value": 7.0, "budget": 2},
        ]})
        rules = rules_from_json(text)
        assert [r.name for r in rules] == ["r1", "r2"]
        assert rules[0].agg == "p95"
        assert rules[1].budget == 2

    def test_rules_from_json_invalid_raises(self):
        with pytest.raises(ValueError, match="invalid SLO rules"):
            rules_from_json(json.dumps({"rules": [{"name": "r"}]}))

    def test_rules_from_path(self, tmp_path):
        p = tmp_path / "rules.json"
        p.write_text(json.dumps({"rules": [
            {"name": "r", "series": "lat", "kind": "threshold",
             "op": "<=", "value": 100.0}]}))
        assert len(rules_from_json(p)) == 1


class TestThreshold:
    def test_pass_and_fail(self):
        store = make_store()
        ok = evaluate_rule(store, SloRule(
            name="r", series="lat", agg="max", op="<=", value=9.0))
        bad = evaluate_rule(store, SloRule(
            name="r", series="lat", agg="max", op="<=", value=8.0))
        assert ok["ok"] is True and bad["ok"] is False
        assert ok["schema"] == SLO_SCHEMA_VERSION
        assert ok["observed"] == pytest.approx(9.0)

    def test_windowed_aggregate(self):
        store = make_store()
        # Last 3 points of lat are 7, 8, 9.
        v = evaluate_rule(store, SloRule(
            name="r", series="lat", agg="min", op=">=", value=7.0, window=3))
        assert v["ok"] is True and v["points"] == 3

    def test_labelled_series(self):
        store = make_store()
        v = evaluate_rule(store, SloRule(
            name="r", series="cost", labels={"tenant": "a"},
            agg="mean", op="<=", value=5.0))
        assert v["ok"] is True
        assert v["series"] == "cost{tenant=a}"

    def test_unlabelled_rule_pools_labelled_series(self):
        store = SeriesStore()
        store.record("cost", 1.0, {"tenant": "a"}, tick=0)
        store.record("cost", 3.0, {"tenant": "b"}, tick=1)
        v = evaluate_rule(store, SloRule(
            name="r", series="cost", agg="max", op="<=", value=3.0))
        assert v["points"] == 2 and v["ok"] is True
        assert v["observed"] == pytest.approx(3.0)

    def test_rule_labels_select_subset_only(self):
        store = SeriesStore()
        store.record("cost", 1.0, {"tenant": "a"}, tick=0)
        store.record("cost", 9.0, {"tenant": "b"}, tick=1)
        v = evaluate_rule(store, SloRule(
            name="r", series="cost", labels={"tenant": "a"},
            agg="max", op="<=", value=1.0))
        assert v["points"] == 1 and v["ok"] is True

    def test_pooled_window_spans_series(self):
        store = SeriesStore()
        for t in range(4):
            store.record("cost", float(t), {"tenant": "a"}, tick=t)
            store.record("cost", float(t) + 0.5, {"tenant": "b"}, tick=t)
        # Pool is tick-sorted; the last 3 pooled points are 3.5, ...
        v = evaluate_rule(store, SloRule(
            name="r", series="cost", agg="count", op=">=", value=3.0,
            window=3))
        assert v["points"] == 3

    def test_last_aggregate(self):
        store = make_store()
        v = evaluate_rule(store, SloRule(
            name="r", series="lat", agg="last", op=">=", value=9.0))
        assert v["ok"] is True

    def test_missing_series_evaluates_empty(self):
        v = evaluate_rule(SeriesStore(), SloRule(
            name="r", series="ghost", agg="count", op=">=", value=1.0))
        assert v["ok"] is False and v["points"] == 0


class TestBudgetBurn:
    def test_within_budget(self):
        store = make_store()
        # lat values 0..9 with bound <= 6.0: three violations (7, 8, 9).
        v = evaluate_rule(store, SloRule(
            name="r", series="lat", kind="budget-burn",
            op="<=", value=6.0, budget=3))
        assert v["observed"] == pytest.approx(3.0)
        assert v["ok"] is True

    def test_over_budget(self):
        store = make_store()
        v = evaluate_rule(store, SloRule(
            name="r", series="lat", kind="budget-burn",
            op="<=", value=6.0, budget=2))
        assert v["ok"] is False


class TestTrend:
    def test_rising_series_violates_flat_bound(self):
        store = make_store()
        v = evaluate_rule(store, SloRule(
            name="r", series="lat", kind="trend", op="<=", value=0.0))
        assert v["observed"] == pytest.approx(1.0)
        assert v["ok"] is False

    def test_falling_series_passes(self):
        store = make_store()
        v = evaluate_rule(store, SloRule(
            name="r", series="sd", kind="trend", op="<=", value=0.0))
        assert v["observed"] == pytest.approx(-1.0)
        assert v["ok"] is True

    def test_degenerate_window_slope_zero(self):
        store = SeriesStore()
        store.record("one", 5.0, tick=3)
        v = evaluate_rule(store, SloRule(
            name="r", series="one", kind="trend", op="<=", value=0.0))
        assert v["observed"] == 0


class TestRendering:
    def test_render_and_order_preserved(self):
        store = make_store()
        rules = [
            SloRule(name="z-last", series="lat", agg="max", op="<=",
                    value=9.0),
            SloRule(name="a-first", series="lat", kind="trend", op="<=",
                    value=0.0),
        ]
        verdicts = evaluate_rules(store, rules)
        assert [v["rule"] for v in verdicts] == ["z-last", "a-first"]
        text = render_verdicts(verdicts)
        assert "VIOLATED" in text
        assert "1 violated" in text
        assert text.index("z-last") < text.index("a-first")

    def test_all_ok_summary(self):
        store = make_store()
        verdicts = evaluate_rules(store, [SloRule(
            name="r", series="lat", agg="max", op="<=", value=9.0)])
        assert "all ok" in render_verdicts(verdicts)


def test_default_rules_are_valid_and_evaluate():
    store = make_store()
    verdicts = evaluate_rules(store, default_rules())
    assert len(verdicts) == 3
    assert all(v["schema"] == SLO_SCHEMA_VERSION for v in verdicts)
