"""Instrumentation-is-inert proof and cross-worker trace determinism.

Two contracts:

* **Inert**: enabling a trace changes no experiment output bit.  The
  tracer never touches an RNG stream and never feeds a value back, so
  ``evaluate_scenarios`` must return bit-identical evaluations with
  tracing on or off, at any worker count.
* **Deterministic**: under the injected tick clock the merged trace is a
  pure function of the work -- byte-identical across repeated runs *and*
  across worker counts (per-cell capture with fresh clocks, merged in
  input order).
"""

import pytest

from repro import obs
from repro.evaluate import evaluate_scenarios, plan_cells, run_cells
from repro.measure import synthetic_bank

STRATEGIES = ("DC", "UCB", "GP-discontinuous")
ITERATIONS = 12
REPS = 2


@pytest.fixture(autouse=True)
def no_leaked_tracer():
    yield
    obs.finish_trace()


@pytest.fixture()
def banks():
    out = {}
    for i, (key, slope) in enumerate([("s1", 0.7), ("s2", 1.1)]):
        out[key] = synthetic_bank(
            f=lambda n, s=slope: 10.0 + 30.0 / n + s * n,
            actions=range(2, 9),
            lp=lambda n: 30.0 / n + 1.0,
            group_boundaries=(2, 4, 8),
            noise_sd=0.4,
            seed=i,
            label=f"synthetic {key}",
        )
    return out


def flatten(evaluations):
    """Every float of an evaluation dict, exactly, for == comparison."""
    out = []
    for key in sorted(evaluations):
        ev = evaluations[key]
        out.append((key, ev.label, ev.all_nodes_mean, ev.oracle_mean,
                    ev.best_action))
        for s in ev.summaries:
            out.append((s.name, tuple(s.totals.tolist()), s.gain_pct))
    return out


class TestTracingIsInert:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_outputs_bit_identical_with_tracing(self, banks, workers):
        plain = flatten(evaluate_scenarios(
            banks, STRATEGIES, iterations=ITERATIONS, reps=REPS,
            workers=workers,
        ))
        obs.start_trace(ticks=True)
        try:
            traced = flatten(evaluate_scenarios(
                banks, STRATEGIES, iterations=ITERATIONS, reps=REPS,
                workers=workers,
            ))
        finally:
            obs.finish_trace()
        assert traced == plain

    def test_wall_clock_tracing_also_inert(self, banks):
        plain = flatten(evaluate_scenarios(
            banks, STRATEGIES, iterations=ITERATIONS, reps=REPS,
        ))
        obs.start_trace(ticks=False)
        try:
            traced = flatten(evaluate_scenarios(
                banks, STRATEGIES, iterations=ITERATIONS, reps=REPS,
            ))
        finally:
            obs.finish_trace()
        assert traced == plain


class TestTraceDeterminism:
    def _trace_lines(self, banks, workers):
        cells = plan_cells(banks, STRATEGIES, REPS)
        tracer = obs.start_trace(ticks=True)
        try:
            run_cells(banks, cells, ITERATIONS, workers=workers)
            return tracer.sink.lines()
        finally:
            obs.finish_trace()

    def test_identical_runs_identical_lines(self, banks):
        first = self._trace_lines(banks, workers=1)
        second = self._trace_lines(banks, workers=1)
        assert first == second
        assert len(first) > len(plan_cells(banks, STRATEGIES, REPS))

    @pytest.mark.parametrize("workers", [2, 3])
    def test_worker_count_does_not_change_trace(self, banks, workers):
        serial = self._trace_lines(banks, workers=1)
        pooled = self._trace_lines(banks, workers=workers)
        assert pooled == serial

    def test_jsonl_file_byte_identical_across_runs(self, banks, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            cells = plan_cells(banks, STRATEGIES, REPS)
            obs.start_trace(path, ticks=True)
            try:
                run_cells(banks, cells, ITERATIONS, workers=1)
            finally:
                obs.finish_trace()
        assert paths[0].read_bytes() == paths[1].read_bytes()


class TestDecisionLog:
    def test_decisions_carry_gp_telemetry(self, banks):
        cells = plan_cells({"s1": banks["s1"]}, ("GP-discontinuous",), 1)
        tracer = obs.start_trace(ticks=True)
        try:
            run_cells({"s1": banks["s1"]}, cells, ITERATIONS, workers=1)
            decisions = [r for r in tracer.sink.records
                         if r["kind"] == "decision"
                         and r["strategy"] == "GP-discontinuous"]
        finally:
            obs.finish_trace()
        assert len(decisions) == ITERATIONS
        for rec in decisions:
            assert {"arm", "duration", "iteration", "overhead_s",
                    "cell_id", "worker"} <= set(rec)
        # Once the GP is fitted, posterior telemetry appears.
        fitted = [r for r in decisions if "posterior_mean" in r]
        assert fitted, "no decision carried GP posterior telemetry"
        for rec in fitted:
            assert rec["posterior_sd"] >= 0.0
            assert rec["acquisition"] <= rec["posterior_mean"]

    def test_cache_counters_reach_summary(self, tmp_path):
        from repro.evaluate import DurationCache

        tracer = obs.start_trace(ticks=True)
        try:
            cache = DurationCache(maxsize=2)
            cache.put("k1", 1.0)
            assert cache.get("k1") == 1.0
            assert cache.get("nope") is None
            cache.put("k2", 2.0)
            cache.put("k3", 3.0)  # evicts k1
            snap = tracer.registry.snapshot()["counters"]
        finally:
            obs.finish_trace()
        assert snap["cache.hit"] == 1
        assert snap["cache.miss"] == 1
        assert snap["cache.evict"] == 1
