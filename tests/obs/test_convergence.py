"""Convergence analytics: trajectory summaries over strategy replays."""

import numpy as np
import pytest

from repro.evaluate.regret import regret_curves
from repro.measure.bank import synthetic_bank
from repro.obs.convergence import (
    ConvergenceSummary,
    analyze_convergence,
    convergence_metrics,
    render_convergence_table,
    summary_to_dict,
)

ITERATIONS = 40
REPS = 3


@pytest.fixture(scope="module")
def bank():
    return synthetic_bank(
        lambda n: 20.0 - 1.5 * n + 0.06 * n * n,
        actions=tuple(range(1, 17)),
        noise_sd=0.3,
        seed=3,
    )


@pytest.fixture(scope="module")
def summaries(bank):
    return analyze_convergence(
        bank, ["DC", "UCB", "GP-discontinuous"], ITERATIONS, REPS)


class TestAnalyze:
    def test_one_summary_per_strategy(self, summaries):
        assert [s.strategy for s in summaries] == [
            "DC", "UCB", "GP-discontinuous"]

    def test_trajectory_shapes(self, summaries):
        for s in summaries:
            assert len(s.regret_trajectory) == ITERATIONS
            assert s.reps == REPS
            # Cumulative regret is non-decreasing (instant regret >= 0).
            diffs = np.diff(s.regret_trajectory)
            assert (diffs >= -1e-9).all()

    def test_exploration_ratio_in_unit_interval(self, summaries):
        for s in summaries:
            assert 0.0 <= s.exploration_ratio <= 1.0

    def test_gp_reports_posterior_decay(self, summaries):
        gp = next(s for s in summaries if s.strategy == "GP-discontinuous")
        assert len(gp.posterior_sd) == ITERATIONS
        assert gp.sd_decay >= 0.0

    def test_model_free_has_no_posterior(self, summaries):
        dc = next(s for s in summaries if s.strategy == "DC")
        assert dc.posterior_sd == []
        assert dc.sd_decay == 1.0

    def test_matches_regret_suite_seeds(self, bank, summaries):
        """Same seed convention as evaluate.regret: identical trajectories."""
        curves = regret_curves(bank, ["UCB"], ITERATIONS, REPS)
        ucb = next(s for s in summaries if s.strategy == "UCB")
        expected = curves["UCB"].cumulative
        assert np.allclose(ucb.regret_trajectory, expected)

    def test_deterministic(self, bank, summaries):
        again = analyze_convergence(
            bank, ["DC", "UCB", "GP-discontinuous"], ITERATIONS, REPS)
        for a, b in zip(summaries, again):
            assert summary_to_dict(a) == summary_to_dict(b)


class TestRendering:
    def test_table_sorted_by_regret(self, summaries):
        text = render_convergence_table(summaries)
        assert "iters-to-5%" in text
        for s in summaries:
            assert s.strategy in text

    def test_never_converged_rendering(self):
        s = ConvergenceSummary(
            strategy="X", iterations=5, reps=1,
            iters_to_5pct=float("inf"), final_cumulative_regret=9.0,
            regret_trajectory=[1.0] * 5)
        assert "never" in render_convergence_table([s])
        assert summary_to_dict(s)["iters_to_5pct"] == -1.0

    def test_metrics_keys_and_finite(self, summaries):
        metrics = convergence_metrics(summaries)
        assert "convergence.UCB.iters_to_5pct" in metrics
        assert "convergence.GP-discontinuous.sd_decay" in metrics
        assert all(np.isfinite(v) for v in metrics.values())
