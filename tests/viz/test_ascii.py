"""Tests for ASCII charts."""

import numpy as np
import pytest

from repro.viz import heatmap, line_plot


class TestLinePlot:
    def test_basic_render(self):
        x = np.arange(10)
        text = line_plot(x, {"y": x**2}, width=30, height=8)
        assert "o=y" in text
        assert "o" in text

    def test_multiple_series_glyphs(self):
        x = np.arange(5, dtype=float)
        text = line_plot(x, {"a": x, "b": 4 - x}, width=20, height=6)
        assert "o=a" in text and "x=b" in text

    def test_constant_series_no_crash(self):
        x = np.arange(4, dtype=float)
        assert line_plot(x, {"c": np.ones(4)})

    def test_nan_values_skipped(self):
        x = np.arange(4, dtype=float)
        y = np.array([1.0, np.nan, 3.0, 4.0])
        assert line_plot(x, {"y": y})

    def test_validation(self):
        with pytest.raises(ValueError):
            line_plot(np.arange(3), {})
        with pytest.raises(ValueError):
            line_plot(np.arange(3), {"y": np.arange(4)})
        with pytest.raises(ValueError):
            line_plot(np.array([]), {"y": np.array([])})


class TestHeatmap:
    def test_shading_extremes(self):
        grid = np.array([[0.0, 10.0]])
        text = heatmap(grid, invert=True)
        line = text.splitlines()[0]
        assert line[0] == "@"  # best (lowest) is darkest
        assert line[1] == " "

    def test_labels(self):
        grid = np.arange(6, dtype=float).reshape(2, 3)
        text = heatmap(grid, row_labels=[2, 4], col_labels=[1, 2, 3])
        assert "2" in text and "scale" in text

    def test_validation(self):
        with pytest.raises(ValueError):
            heatmap(np.arange(3.0))
