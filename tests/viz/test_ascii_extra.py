"""Additional viz coverage: non-inverted heatmaps, timeline helpers."""

import numpy as np

from repro.viz import heatmap
from repro.viz.ascii import _GLYPHS, _SHADES


class TestHeatmapNonInverted:
    def test_high_values_dark_when_not_inverted(self):
        grid = np.array([[0.0, 10.0]])
        line = heatmap(grid, invert=False).splitlines()[0]
        assert line[0] == " "
        assert line[1] == "@"

    def test_uniform_grid_no_crash(self):
        grid = np.full((3, 3), 5.0)
        text = heatmap(grid)
        assert "scale" in text

    def test_shade_palette_monotone(self):
        assert list(_SHADES) == sorted(set(_SHADES), key=_SHADES.index)
        assert len(_GLYPHS) >= 7  # enough glyphs for the 7 strategies


class TestTimelineHelpers:
    def test_node_busy_sums_phases(self):
        from repro.platform import Cluster, NetworkModel, NodeType
        from repro.runtime import (
            DataRegistry,
            PerfModel,
            Simulator,
            TaskGraph,
            utilization_timeline,
        )

        unit = NodeType(
            name="u", site="SD", category="S", cpu_desc="", gpu_desc="",
            cpu_gflops=1.0, gpus=0, gpu_gflops=0.0, nic_gbps=8.0,
            memory_gb=1.0, cpu_slots=1,
        )
        pm = PerfModel(efficiency={("t", "cpu"): 1.0}, overhead_s=0.0)
        cluster = Cluster([(unit, 1)], network=NetworkModel(latency_s=0.0))
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 0, home=0)
        g.submit("t", "p1", 1e9, writes=[a])
        g.submit("t", "p2", 1e9, reads=[a], writes=[a])
        res = Simulator(cluster, pm, trace=True).run(g)
        tl = utilization_timeline(res, cluster, nbins=8)
        busy = tl.node_busy(0)
        assert np.allclose(busy, 1.0)  # node fully busy the whole time
