"""Characterization of the `repro fuzz` CLI."""

import json

import pytest

from repro.cli import main

#: Small-but-real run arguments: two scenarios, three strategies.
RUN_ARGS = [
    "fuzz", "run", "--count", "2", "--seed", "7",
    "--strategies", "DC", "UCB", "Resilient(UCB)",
    "--iterations", "20", "--no-workers-check",
]


class TestFuzzRunErrors:
    def test_unknown_family_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "run", "--families", "quantum"])
        assert exc.value.code == 2
        assert "unknown family" in capsys.readouterr().err

    def test_bad_seed_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "run", "--seed", "-1"])
        assert exc.value.code == 2
        assert "--seed" in capsys.readouterr().err

    def test_malformed_bound_exits_2(self, capsys):
        # Non-numeric is argparse's job ...
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "run", "--bound", "tight"])
        assert exc.value.code == 2
        # ... non-positive is ours.
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "run", "--bound", "-0.5"])
        assert exc.value.code == 2
        assert "--bound" in capsys.readouterr().err

    def test_unknown_strategy_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "run", "--strategies", "Psychic"])
        assert exc.value.code == 2
        assert "unknown strategy" in capsys.readouterr().err

    def test_too_few_iterations_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "run", "--iterations", "5"])
        assert exc.value.code == 2
        assert "--iterations" in capsys.readouterr().err


class TestFuzzRun:
    def test_green_run_writes_the_canonical_report(self, capsys, tmp_path):
        out = tmp_path / "BENCH_fuzz.json"
        assert main(RUN_ARGS + ["--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "all properties held" in printed
        payload = json.loads(out.read_text())
        assert payload["ok"] is True
        assert len(payload["scenarios"]) == 2
        assert set(payload["strategies"]) == {"DC", "UCB", "Resilient(UCB)"}

    def test_report_bytes_are_reproducible(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        assert main(RUN_ARGS + ["--out", str(a)]) == 0
        assert main(RUN_ARGS + ["--out", str(b), "--workers", "2"]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_failing_run_shrinks_promotes_and_exits_1(self, capsys,
                                                      tmp_path):
        art = tmp_path / "artifacts"
        with pytest.raises(SystemExit) as exc:
            main([
                "fuzz", "run", "--count", "1", "--seed", "7",
                "--strategies", "UCB", "--iterations", "20",
                "--no-workers-check", "--bound", "0.0001",
                "--out", "", "--artifact-dir", str(art),
            ])
        assert exc.value.code == 1
        printed = capsys.readouterr().out
        assert "FAILED" in printed
        assert "shrunk" in printed
        artifacts = list(art.glob("*.json"))
        assert artifacts, "a shrunk scenario artifact must be written"
        payload = json.loads(artifacts[0].read_text())
        assert payload["failure"]["strategy"] == "UCB"
        assert payload["shrink_steps"]


class TestFuzzReplay:
    def test_missing_corpus_entry_exits_2(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "replay", "fz_missing.json",
                  "--dir", str(tmp_path)])
        assert exc.value.code == 2
        assert "no such corpus entry" in capsys.readouterr().err

    def test_empty_golden_dir_is_a_noop(self, capsys, tmp_path):
        assert main(["fuzz", "replay", "--dir", str(tmp_path)]) == 0
        assert "no promoted scenarios" in capsys.readouterr().out

    def test_committed_goldens_replay_green(self, capsys):
        # Default --dir: the committed regression corpus.
        assert main(["fuzz", "replay"]) == 0
        out = capsys.readouterr().out
        assert "0 reproduced" in out


class TestFuzzPromote:
    def test_unknown_check_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "promote", "0", "--strategy", "UCB",
                  "--check", "vibes"])
        assert exc.value.code == 2

    def test_holding_property_exits_1(self, capsys, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["fuzz", "promote", "1", "--seed", "7",
                  "--strategy", "DC", "--check", "regret-bound",
                  "--iterations", "20", "--dir", str(tmp_path)])
        assert exc.value.code == 1
        assert "nothing to promote" in capsys.readouterr().out
        assert not list(tmp_path.glob("*.json"))

    def test_forced_failure_promotes_a_golden(self, capsys, tmp_path):
        assert main([
            "fuzz", "promote", "0", "--seed", "7", "--strategy", "UCB",
            "--check", "regret-bound", "--bound", "0.0001",
            "--iterations", "20", "--dir", str(tmp_path),
        ]) == 0
        assert "promoted" in capsys.readouterr().out
        goldens = list(tmp_path.glob("*.json"))
        assert len(goldens) == 1
        payload = json.loads(goldens[0].read_text())
        assert payload["expect"] == "pass"
