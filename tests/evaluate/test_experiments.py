"""Tests for the per-figure experiment drivers (reduced sizes)."""

import numpy as np
import pytest

from repro.evaluate import (
    PAPER_TABLE1,
    evaluate_scenarios,
    figure1,
    figure3,
    figure4_snapshots,
    figure8,
    table1,
    table2,
)
from repro.measure import synthetic_bank


@pytest.fixture(autouse=True)
def small_workload(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TILES_101", "8")
    monkeypatch.setenv("REPRO_TILES_128", "8")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


@pytest.fixture(scope="module")
def synth_banks():
    def mk(seed, best):
        return synthetic_bank(
            f=lambda n: 5.0 + best * 8.0 / n + 0.5 * n,
            actions=range(2, 11),
            lp=lambda n: best * 8.0 / n,
            group_boundaries=(4, 10),
            noise_sd=0.2,
            seed=seed,
        )

    return {"x": mk(0, 1.0), "y": mk(1, 2.0)}


class TestFigure1:
    def test_three_iterations(self):
        result = figure1("b")
        assert len(result.timelines) == 3
        assert len(result.makespans) == 3
        assert all(m > 0 for m in result.makespans)

    def test_phases_overlap_in_trace(self):
        result = figure1("b")
        spans = result.phase_spans[1]
        gen = spans["generation"]
        fact = spans["factorization"]
        assert fact[0] < gen[1]  # factorization starts before generation ends

    def test_restricted_iteration_uses_fewer_fact_nodes(self):
        result = figure1("b")
        assert "iteration 3" in result.descriptions[2]


class TestFigure3:
    def test_coverage_and_next_point(self):
        result = figure3()
        assert 0.0 <= result.next_point <= 4 * np.pi
        assert result.coverage_95 > 0.8
        assert result.grid.shape == result.mean.shape == result.sd.shape


class TestFigure4:
    def test_snapshots_captured(self, synth_banks):
        snaps = figure4_snapshots(
            synth_banks["x"], "GP-discontinuous", iterations=(5, 8, 12)
        )
        assert [s.iteration for s in snaps] == [5, 8, 12]
        # Counts accumulate over iterations.
        assert sum(snaps[0].counts.values()) == 4
        assert sum(snaps[-1].counts.values()) == 11

    def test_gp_surface_available_after_init(self, synth_banks):
        snaps = figure4_snapshots(synth_banks["x"], "GP-UCB", iterations=(10,))
        s = snaps[0]
        assert s.mean is not None
        assert s.lcb is not None
        assert np.all(s.lcb <= s.mean + 1e-9)

    def test_next_action_in_grid(self, synth_banks):
        snaps = figure4_snapshots(synth_banks["x"], "GP-UCB", iterations=(8,))
        assert snaps[0].next_action in synth_banks["x"].actions


class TestFigure8:
    def test_grid_and_best(self):
        result = figure8("b", step=6)
        assert result.durations.ndim == 2
        gen, fact, dur = result.best()
        assert dur <= result.all_nodes_duration() + 1e-9
        assert gen in result.gen_counts
        assert fact in result.fact_counts


class TestTable1:
    def test_derivation(self, synth_banks):
        evals = evaluate_scenarios(
            synth_banks, strategies=("DC", "GP-discontinuous"),
            iterations=30, reps=4,
        )
        early = evaluate_scenarios(
            synth_banks, strategies=("DC", "GP-discontinuous"),
            iterations=10, reps=4,
        )
        rows = table1(evals, early)
        assert [r.strategy for r in rows] == ["DC", "GP-discontinuous"]
        for r in rows:
            assert 0 <= r.near_optimal_scenarios <= r.total_scenarios
            assert r.paper == PAPER_TABLE1[r.strategy]

    def test_paper_expectations_complete(self):
        from repro.strategies import strategy_names

        assert set(PAPER_TABLE1) == set(strategy_names())


class TestTable2:
    def test_six_machines(self):
        rows = table2()
        assert len(rows) == 6
        assert {r["site"] for r in rows} == {"G5K", "SD"}
        assert all(r["total_gflops"] > 0 for r in rows)
