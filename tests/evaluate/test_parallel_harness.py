"""Serial-vs-parallel equivalence suite for the evaluation harness.

The determinism contract (DET001) promises that the Figure 6 grid is a
pure function of its seeds; this suite pins the stronger harness
contract: for any worker count, ``evaluate_scenarios`` /
``run_strategy`` / ``run_cells`` produce **bit-identical** summaries,
regrets and per-iteration traces to the serial path.

CI runs this file with ``REPRO_EQUIV_WORKERS=2``; locally it defaults to
worker counts 2 and 4.
"""

import os
import random

import numpy as np
import pytest

from repro.evaluate import (
    cumulative_regret,
    evaluate_scenario,
    evaluate_scenarios,
    plan_cells,
    rebuild_app,
    run_cells,
    run_strategy,
)
from repro.evaluate.parallel import (
    ALL_NODES_CELL,
    ORACLE_CELL,
    EvalCell,
    derive_cell_seed,
)
from repro.measure import DriftingBank, synthetic_bank
from repro.platform import get_scenario

#: Worker counts exercised against the serial reference (CI: "2").
WORKER_COUNTS = tuple(
    int(w) for w in os.environ.get("REPRO_EQUIV_WORKERS", "2 4").split()
)

#: The equivalence grid: 3 scenarios x 3 strategies (one per family).
STRATEGIES = ("DC", "UCB", "GP-discontinuous")
ITERATIONS = 25
REPS = 3


def _make_banks():
    banks = {}
    for i, (key, slope) in enumerate([("s1", 0.7), ("s2", 0.4), ("s3", 1.1)]):
        banks[key] = synthetic_bank(
            f=lambda n, s=slope: 10.0 + 30.0 / n + s * n,
            actions=range(2, 13),
            lp=lambda n: 30.0 / n + 1.0,
            group_boundaries=(2, 6, 12),
            noise_sd=0.4,
            seed=i,
            label=f"synthetic {key}",
        )
    return banks


@pytest.fixture(scope="module")
def banks():
    return _make_banks()


@pytest.fixture(scope="module")
def serial(banks):
    return evaluate_scenarios(
        banks, STRATEGIES, iterations=ITERATIONS, reps=REPS, workers=1
    )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
class TestEvaluateEquivalence:
    def test_summaries_bit_identical(self, banks, serial, workers):
        parallel = evaluate_scenarios(
            banks, STRATEGIES, iterations=ITERATIONS, reps=REPS,
            workers=workers,
        )
        assert sorted(parallel) == sorted(serial)
        for key in banks:
            es, ep = serial[key], parallel[key]
            assert ep.label == es.label
            assert ep.best_action == es.best_action
            # Bit-identical floats, not approx: the contract is exact.
            assert ep.all_nodes_mean == es.all_nodes_mean
            assert ep.oracle_mean == es.oracle_mean
            assert [s.name for s in ep.summaries] == [
                s.name for s in es.summaries
            ]
            for ss, sp in zip(es.summaries, ep.summaries):
                assert np.array_equal(sp.totals, ss.totals)
                assert sp.gain_pct == ss.gain_pct
                assert sp.group == ss.group

    def test_single_scenario_and_run_strategy(self, banks, workers):
        bank = banks["s2"]
        es = evaluate_scenario(
            bank, STRATEGIES[:2], iterations=ITERATIONS, reps=REPS, workers=1
        )
        ep = evaluate_scenario(
            bank, STRATEGIES[:2], iterations=ITERATIONS, reps=REPS,
            workers=workers,
        )
        assert ep.all_nodes_mean == es.all_nodes_mean
        for ss, sp in zip(es.summaries, ep.summaries):
            assert np.array_equal(sp.totals, ss.totals)
        t1 = run_strategy("DC", bank, iterations=20, reps=4, workers=1)
        tn = run_strategy("DC", bank, iterations=20, reps=4, workers=workers)
        assert np.array_equal(t1, tn)

    def test_traces_and_regrets_bit_identical(self, banks, workers):
        cells = plan_cells(banks, STRATEGIES[:2], REPS)
        r1 = run_cells(banks, cells, ITERATIONS, workers=1)
        rn = run_cells(banks, cells, ITERATIONS, workers=workers)
        assert len(r1) == len(rn) == len(cells)
        for a, b in zip(r1, rn):
            assert a.cell == b.cell
            assert np.array_equal(a.chosen, b.chosen)
            assert np.array_equal(a.durations, b.durations)
            assert a.total == b.total
            best = banks[a.cell.scenario].mean(
                banks[a.cell.scenario].best_action()
            )
            assert cumulative_regret(a.durations, best) == cumulative_regret(
                b.durations, best
            )

    def test_worker_order_independence(self, banks, workers):
        """Shuffled submission order must not change any cell's result."""
        cells = plan_cells(banks, ("DC", "UCB"), REPS)
        ordered = run_cells(banks, cells, ITERATIONS, workers=workers)
        shuffled = list(cells)
        random.Random(0).shuffle(shuffled)
        by_cell = {
            r.cell: r
            for r in run_cells(banks, shuffled, ITERATIONS, workers=workers)
        }
        for r in ordered:
            assert np.array_equal(by_cell[r.cell].durations, r.durations)
            assert by_cell[r.cell].total == r.total


class TestSeedDerivation:
    def test_matches_historical_serial_scheme(self):
        import zlib

        assert derive_cell_seed("DC", 3, 7) == (7, 3, zlib.crc32(b"DC"))
        assert derive_cell_seed(ALL_NODES_CELL, 2, 0) == (0, 2, 0xBA5E)
        assert derive_cell_seed(ORACLE_CELL, 2, 0) == (0, 2, 0xBA5E)

    def test_pure_function_of_cell_identity(self):
        a = derive_cell_seed("GP-discontinuous", 5, 1)
        b = derive_cell_seed("GP-discontinuous", 5, 1)
        assert a == b
        assert derive_cell_seed("GP-discontinuous", 6, 1) != a
        assert derive_cell_seed("GP-UCB", 5, 1) != a

    def test_plan_order_is_deterministic(self, banks):
        p1 = plan_cells(banks, STRATEGIES, 2)
        p2 = plan_cells(dict(reversed(list(banks.items()))), STRATEGIES, 2)
        assert p1 == p2
        assert p1[0] == EvalCell("s1", ALL_NODES_CELL, 0)


class TestStatefulBankGuard:
    def test_drifting_bank_rejected_in_parallel(self, banks):
        before = banks["s1"]
        after = synthetic_bank(
            f=lambda n: 5.0 + 50.0 / n, actions=range(2, 13), seed=9,
            label="after",
        )
        drift = DriftingBank(before, after, switch_at=10)
        cells = [EvalCell("d", "DC", rep) for rep in range(2)]
        with pytest.raises(ValueError, match="stateful"):
            run_cells({"d": drift}, cells, 10, workers=2)
        # Serial execution remains supported.
        assert len(run_cells({"d": drift}, cells, 10, workers=1)) == 2


class TestRebuildApp:
    """Direct unit test of the shared pickle-safe worker rebuild helper."""

    def test_rebuilds_consistent_application(self, monkeypatch):
        scenario = get_scenario("b")
        # Touch the variable through monkeypatch first so the original
        # value is restored after rebuild_app overwrites it.
        monkeypatch.setenv("REPRO_TILES_101", "10")
        app, cluster, workload = rebuild_app(scenario, 10)
        assert os.environ[f"REPRO_TILES_{scenario.workload}"] == "10"
        assert workload.t == 10
        assert len(cluster) == scenario.total_nodes
        assert app.cluster is cluster

    def test_tile_count_is_pinned_not_inherited(self, monkeypatch):
        scenario = get_scenario("b")
        monkeypatch.setenv("REPRO_TILES_101", "12")
        _, _, w1 = rebuild_app(scenario, 8)
        assert w1.t == 8
        _, _, w2 = rebuild_app(scenario, 10)
        assert w2.t == 10

    def test_simulation_matches_sweep_worker(self, monkeypatch):
        """The helper reproduces what the sweep's pool worker computes."""
        from repro.measure.sweep import _measure_action

        monkeypatch.setenv("REPRO_TILES_101", "10")
        scenario = get_scenario("b")
        n, duration, rigid = _measure_action((scenario, 10, 7, True))
        app, cluster, _ = rebuild_app(scenario, 10)
        assert n == 7
        assert duration == app.measure(7, len(cluster))
        assert rigid is not None
