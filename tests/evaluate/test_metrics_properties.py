"""Property-based tests for evaluation metrics and regret analysis.

Stdlib-``random`` generators only (seeded, no new dependencies), in the
style of ``test_duration_cache.py``: randomized inputs, invariant
assertions.  The properties are the ones Figures 6 and Table I lean on:
regret against the clairvoyant best is never negative, aggregation does
not care about repetition order, and cumulative regret only ever grows.
"""

import math
import random

import numpy as np
import pytest

from repro.evaluate import cumulative_regret, gain_percent, summarize
from repro.evaluate.regret import RegretCurve, convergence_table, regret_curves
from repro.measure import synthetic_bank

N_TRIALS = 50


def _rng(seed):
    return random.Random(seed)


def random_durations(rng, lo=0.1, hi=100.0, max_len=40):
    return [rng.uniform(lo, hi) for _ in range(rng.randint(1, max_len))]


class TestGainPercent:
    def test_zero_at_baseline(self):
        rng = _rng(0)
        for _ in range(N_TRIALS):
            b = rng.uniform(0.1, 1e4)
            assert gain_percent(b, b) == 0.0

    def test_sign_matches_speedup(self):
        rng = _rng(1)
        for _ in range(N_TRIALS):
            b = rng.uniform(1.0, 1e3)
            faster = b * rng.uniform(0.01, 0.99)
            slower = b * rng.uniform(1.01, 3.0)
            assert gain_percent(b, faster) > 0
            assert gain_percent(b, slower) < 0

    def test_scale_invariant(self):
        rng = _rng(2)
        for _ in range(N_TRIALS):
            b, v, c = (rng.uniform(0.5, 100.0) for _ in range(3))
            assert gain_percent(c * b, c * v) == pytest.approx(
                gain_percent(b, v)
            )

    def test_nonpositive_baseline_rejected(self):
        for b in (0.0, -1.0):
            with pytest.raises(ValueError):
                gain_percent(b, 1.0)


class TestCumulativeRegret:
    def test_non_negative_against_clairvoyant_best(self):
        """Regret vs. a best no worse than any observation is >= 0."""
        rng = _rng(3)
        for _ in range(N_TRIALS):
            durations = random_durations(rng)
            best = min(durations) * rng.uniform(0.0, 1.0)
            assert cumulative_regret(durations, best) >= 0.0

    def test_zero_for_oracle_play(self):
        rng = _rng(4)
        for _ in range(N_TRIALS):
            best = rng.uniform(0.1, 50.0)
            k = rng.randint(1, 30)
            assert cumulative_regret([best] * k, best) == pytest.approx(0.0)

    def test_permutation_invariant(self):
        rng = _rng(5)
        for _ in range(N_TRIALS):
            durations = random_durations(rng)
            best = rng.uniform(0.0, min(durations))
            shuffled = durations[:]
            rng.shuffle(shuffled)
            assert cumulative_regret(shuffled, best) == pytest.approx(
                cumulative_regret(durations, best)
            )


class TestSummarizeProperties:
    def test_aggregation_permutation_invariant(self):
        rng = _rng(6)
        for _ in range(N_TRIALS):
            totals = random_durations(rng, lo=10.0, hi=500.0)
            baseline = rng.uniform(10.0, 500.0)
            shuffled = totals[:]
            rng.shuffle(shuffled)
            a = summarize("s", "g", totals, baseline)
            b = summarize("s", "g", shuffled, baseline)
            assert a.mean_total == pytest.approx(b.mean_total)
            assert a.sd_total == pytest.approx(b.sd_total)
            assert a.gain_pct == pytest.approx(b.gain_pct)
            assert a.ci95_half_width == pytest.approx(b.ci95_half_width)

    def test_ci_zero_for_single_rep(self):
        assert summarize("s", "g", [42.0], 50.0).ci95_half_width == 0.0


def random_curve(rng, reps=3, iterations=25):
    regret = np.asarray(
        [[rng.uniform(0.0, 5.0) for _ in range(iterations)]
         for _ in range(reps)]
    )
    chosen = np.asarray(
        [[rng.randint(2, 12) for _ in range(iterations)]
         for _ in range(reps)]
    )
    curve = RegretCurve(name="rand", chosen=chosen, instant_regret=regret)
    curve._best_duration = rng.uniform(1.0, 30.0)
    return curve


class TestRegretCurveProperties:
    def test_cumulative_monotone_when_instant_nonnegative(self):
        rng = _rng(7)
        for _ in range(N_TRIALS):
            curve = random_curve(rng)
            cum = curve.cumulative
            assert cum[0] >= 0.0
            assert np.all(np.diff(cum) >= -1e-12)

    def test_convergence_zero_when_always_below(self):
        curve = RegretCurve(
            name="c", chosen=np.zeros((2, 5), dtype=int),
            instant_regret=np.zeros((2, 5)),
        )
        curve._best_duration = 10.0
        assert curve.convergence_iteration() == 0.0

    def test_convergence_inf_when_never_below(self):
        curve = RegretCurve(
            name="c", chosen=np.zeros((2, 5), dtype=int),
            instant_regret=np.full((2, 5), 99.0),
        )
        curve._best_duration = 1.0
        assert math.isinf(curve.convergence_iteration())

    def test_convergence_finds_last_excursion(self):
        regret = np.asarray([[9.0, 0.0, 9.0, 0.0, 0.0]])
        curve = RegretCurve(
            name="c", chosen=np.zeros_like(regret, dtype=int),
            instant_regret=regret,
        )
        curve._best_duration = 10.0  # threshold = 0.5
        assert curve.convergence_iteration() == 3.0


class TestRegretCurvesOnBank:
    """The real pipeline satisfies the same invariants end-to-end."""

    @pytest.fixture()
    def bank(self):
        return synthetic_bank(
            f=lambda n: 10.0 + 30.0 / n + 0.8 * n,
            actions=range(2, 9),
            lp=lambda n: 30.0 / n + 1.0,
            group_boundaries=(2, 4, 8),
            noise_sd=0.3,
            seed=11,
            label="synthetic regret",
        )

    def test_instant_regret_nonnegative_and_cumulative_monotone(self, bank):
        curves = regret_curves(bank, ("DC", "UCB"), iterations=15, reps=2)
        for curve in curves.values():
            assert np.all(curve.instant_regret >= -1e-12)
            assert np.all(np.diff(curve.cumulative) >= -1e-12)

    def test_convergence_table_sorted_by_regret(self, bank):
        curves = regret_curves(bank, ("DC", "UCB"), iterations=15, reps=2)
        rows = convergence_table(curves)
        values = [r["cumulative_regret"] for r in rows]
        assert values == sorted(values)
        assert all(v >= 0.0 for v in values)
