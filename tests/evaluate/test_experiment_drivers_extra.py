"""Extra coverage for experiment drivers: figure2/5 banks and figure6."""

import pytest

from repro.evaluate import figure2_banks, figure6
from repro.measure import synthetic_bank
from repro.platform import FIGURE2_KEYS


@pytest.fixture(autouse=True)
def tiny(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TILES_101", "8")
    monkeypatch.setenv("REPRO_TILES_128", "8")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestFigure2Banks:
    def test_builds_three_banks(self):
        banks = figure2_banks()
        assert set(banks) == set(FIGURE2_KEYS)
        for bank in banks.values():
            assert len(bank.actions) >= 3


class TestFigure6Driver:
    def test_runs_on_injected_banks(self):
        banks = {
            "x": synthetic_bank(
                f=lambda n: 5.0 + 10.0 / n + 0.4 * n,
                actions=range(2, 9),
                lp=lambda n: 10.0 / n,
                group_boundaries=(4, 8),
                noise_sd=0.2,
            )
        }
        evaluations = figure6(
            banks=banks, strategies=("UCB-struct",), iterations=20, reps=3
        )
        assert set(evaluations) == {"x"}
        assert evaluations["x"].summaries[0].name == "UCB-struct"
