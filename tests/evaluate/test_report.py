"""Tests for text reporting."""

import pytest

from repro.evaluate import (
    evaluate_scenario,
    evaluation_table,
    figure6_matrix,
    format_table,
    summaries_ranking,
    sweep_table,
)
from repro.measure import synthetic_bank


@pytest.fixture(scope="module")
def bank():
    return synthetic_bank(
        f=lambda n: 4.0 + 16.0 / n + 0.5 * n,
        actions=range(2, 9),
        lp=lambda n: 16.0 / n,
        group_boundaries=(4, 8),
        noise_sd=0.2,
        seed=1,
        label="(x) synthetic",
    )


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "--" in lines[1]
        assert "2.50" in lines[2]


class TestSweepTable:
    def test_contains_label_and_rows(self, bank):
        text = sweep_table(bank)
        assert "(x) synthetic" in text
        assert "n_fact" in text
        assert len(text.splitlines()) == 2 + 1 + len(bank.actions)

    def test_rigid_column_when_present(self, bank):
        bank.rigid = {n: 1.0 for n in bank.actions}
        try:
            assert "rigid" in sweep_table(bank)
        finally:
            bank.rigid = {}


class TestEvaluationTables:
    @pytest.fixture(scope="class")
    def evaluation(self, bank):
        return evaluate_scenario(bank, strategies=("DC",), iterations=20, reps=3)

    def test_evaluation_table(self, evaluation):
        text = evaluation_table(evaluation)
        assert "all-nodes baseline" in text
        assert "DC" in text
        assert "%" in text

    def test_figure6_matrix(self, evaluation):
        text = figure6_matrix({"x": evaluation})
        assert "(x)" in text
        assert "DC" in text

    def test_ranking(self, evaluation):
        text = summaries_ranking(evaluation.summaries)
        assert "DC" in text

    def test_empty_matrix(self):
        assert "no scenarios" in figure6_matrix({})
