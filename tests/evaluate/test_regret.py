"""Tests for the regret/convergence analysis."""

import numpy as np
import pytest

from repro.evaluate import convergence_table, regret_curves
from repro.measure import synthetic_bank


@pytest.fixture(scope="module")
def bank():
    return synthetic_bank(
        f=lambda n: 8.0 + 24.0 / n + 0.6 * n,
        actions=range(2, 13),
        lp=lambda n: 24.0 / n,
        group_boundaries=(4, 12),
        noise_sd=0.25,
        seed=11,
    )


@pytest.fixture(scope="module")
def curves(bank):
    return regret_curves(
        bank, ("UCB-struct", "GP-discontinuous", "Right-Left"),
        iterations=60, reps=4,
    )


class TestRegretCurves:
    def test_shapes(self, curves):
        for curve in curves.values():
            assert curve.chosen.shape == (4, 60)
            assert curve.instant_regret.shape == (4, 60)

    def test_regret_nonnegative(self, curves):
        for curve in curves.values():
            assert np.all(curve.instant_regret >= -1e-9)

    def test_cumulative_monotone(self, curves):
        for curve in curves.values():
            cum = curve.cumulative
            assert np.all(np.diff(cum) >= -1e-9)

    def test_gp_disc_sublinear_regret(self, bank, curves):
        """Once converged, instantaneous regret is small: the cumulative
        curve flattens (regret in the second half grows slower)."""
        cum = curves["GP-discontinuous"].cumulative
        first_half = cum[29] - cum[0]
        second_half = cum[-1] - cum[30]
        assert second_half < first_half

    def test_convergence_iteration_finite_for_good_strategy(self, curves):
        conv = curves["GP-discontinuous"].convergence_iteration(tolerance=0.1)
        assert conv < 40

    def test_table_sorted_by_regret(self, curves):
        rows = convergence_table(curves)
        regrets = [r["cumulative_regret"] for r in rows]
        assert regrets == sorted(regrets)
        assert {r["strategy"] for r in rows} == set(curves)
