"""Tests for evaluation metrics."""

import numpy as np
import pytest

from repro.evaluate import cumulative_regret, gain_percent, summarize


class TestGainPercent:
    def test_faster_is_positive(self):
        assert gain_percent(100.0, 50.0) == pytest.approx(50.0)

    def test_slower_is_negative(self):
        assert gain_percent(100.0, 110.0) == pytest.approx(-10.0)

    def test_equal_is_zero(self):
        assert gain_percent(42.0, 42.0) == 0.0

    def test_invalid_baseline(self):
        with pytest.raises(ValueError):
            gain_percent(0.0, 10.0)


class TestCumulativeRegret:
    def test_optimal_policy_zero_regret(self):
        assert cumulative_regret([5.0, 5.0, 5.0], best_mean=5.0) == 0.0

    def test_positive_for_suboptimal(self):
        assert cumulative_regret([6.0, 7.0], best_mean=5.0) == pytest.approx(3.0)


class TestSummarize:
    def test_fields(self):
        s = summarize("X", "G", [100.0, 110.0, 90.0], baseline_mean=200.0)
        assert s.name == "X"
        assert s.mean_total == pytest.approx(100.0)
        assert s.gain_pct == pytest.approx(50.0)
        assert s.sd_total == pytest.approx(np.std([100.0, 110.0, 90.0]))

    def test_ci_half_width(self):
        s = summarize("X", "G", [10.0] * 30, baseline_mean=20.0)
        assert s.ci95_half_width == 0.0
        s2 = summarize("X", "G", [9.0, 11.0] * 15, baseline_mean=20.0)
        assert s2.ci95_half_width > 0
