"""Figure 7 overhead regression: absolute bound + family ordering.

The paper's claim is that strategy computation is negligible against
10-30 s iterations (0.04-0.06 s/iteration for the GP online).  Two
regressions guard it:

* every strategy stays under a generous absolute per-iteration bound on
  CI hardware, and
* the qualitative cost ordering holds: heuristics < multi-armed bandits
  < GP fitting (per-family mean), each by a comfortable factor.

Timings use the strategies' self-timed ``Strategy.overheads`` via
:func:`repro.evaluate.strategy_overheads` on a synthetic bank, so no
simulator time pollutes the measurement.
"""

import numpy as np
import pytest

from repro.evaluate import measure_overhead, strategy_overheads
from repro.measure import synthetic_bank

#: Generous CI bound: per-iteration strategy cost, seconds.  The paper
#: reports 0.04-0.06 s for the GP; anything near 0.25 s is a regression.
MAX_PER_ITERATION_S = 0.25

FAMILIES = {
    "heuristics": ("DC", "Right-Left"),
    "bandits": ("UCB", "UCB-struct"),
    "gp": ("GP-UCB", "GP-discontinuous"),
}


@pytest.fixture(scope="module")
def overheads():
    bank = synthetic_bank(
        f=lambda n: 10.0 + 30.0 / n + 0.7 * n,
        actions=range(2, 13),
        lp=lambda n: 30.0 / n + 1.0,
        group_boundaries=(2, 6, 12),
        noise_sd=0.4,
        seed=3,
        label="synthetic overhead",
    )
    names = [n for members in FAMILIES.values() for n in members]
    return strategy_overheads(names, bank, iterations=40, reps=3)


class TestAbsoluteBound:
    def test_every_strategy_under_ci_bound(self, overheads):
        for name, per_iter in overheads.items():
            assert 0.0 <= per_iter < MAX_PER_ITERATION_S, (
                f"{name}: {per_iter:.4f} s/iteration exceeds the "
                f"{MAX_PER_ITERATION_S} s regression bound"
            )


class TestFamilyOrdering:
    def test_heuristics_cheaper_than_bandits_cheaper_than_gp(self, overheads):
        means = {
            family: float(np.mean([overheads[n] for n in members]))
            for family, members in FAMILIES.items()
        }
        assert means["heuristics"] < means["bandits"] < means["gp"], means

    def test_gp_dominates_by_a_clear_factor(self, overheads):
        """GP fitting is the expensive family (Fig 7's subject), not a tie."""
        gp = min(overheads[n] for n in FAMILIES["gp"])
        cheap = max(overheads[n] for n in FAMILIES["heuristics"])
        assert gp > 2.0 * cheap, (gp, cheap)


class TestMeasureOverheadOnline:
    """The online (in-application) Figure 7 measurement stays sane."""

    @pytest.fixture(scope="class", autouse=True)
    def tiny(self):
        import os

        old = dict(os.environ)
        os.environ["REPRO_TILES_101"] = "8"
        os.environ["REPRO_TILES_128"] = "8"
        yield
        os.environ.clear()
        os.environ.update(old)

    def test_steady_state_within_bound_and_relative_negligible(self):
        result = measure_overhead(reps=2, iterations=12)
        assert result.steady_state_mean < MAX_PER_ITERATION_S
        # Overhead is negligible against simulated 10-30 s iterations.
        assert result.relative_overhead < 0.05
        # Self-timed per-iteration overheads are all non-negative.
        assert (result.per_iteration >= 0.0).all()
