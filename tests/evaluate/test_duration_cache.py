"""Property-based tests for the duration cache and its content keys.

Stdlib-``random`` generators only (seeded, no new dependencies): random
(scenario, config, workload) triples must produce collision-free keys,
equal triples must always hit, the LRU must respect its bound, and the
disk spill must round-trip bit-exactly.
"""

import random

import pytest

from repro.evaluate import DurationCache, simulation_fingerprint
from repro.evaluate.cache import SPILL_FORMAT_VERSION
from repro.measure import MODEL_VERSION
from repro.platform import get_scenario
from repro.platform.scenarios import Scenario

SITES = ("G5K", "SD")
CATEGORIES = ("L", "M", "S")
WORKLOADS = ("101", "128")
MODES = ("Real", "Simul")


def random_triple(rng: random.Random):
    """One random (scenario, tiles, plan) triple."""
    counts = tuple(
        (cat, rng.randint(1, 64))
        for cat in rng.sample(CATEGORIES, rng.randint(1, 3))
    )
    scenario = Scenario(
        key=rng.choice("abcdefghijklmnop"),
        site=rng.choice(SITES),
        counts=counts,
        workload=rng.choice(WORKLOADS),
        mode=rng.choice(MODES),
    )
    tiles = rng.randint(2, 128)
    n_fact = rng.randint(2, 128)
    n_gen = rng.randint(2, 128)
    return scenario, tiles, n_fact, n_gen


def triple_identity(triple):
    """Everything the key may depend on (note: NOT the subfigure letter)."""
    scenario, tiles, n_fact, n_gen = triple
    return (scenario.site, scenario.counts, scenario.workload, scenario.mode,
            tiles, n_fact, n_gen)


class TestContentKeys:
    def test_distinct_triples_never_collide(self):
        rng = random.Random(20260806)
        seen = {}
        for _ in range(300):
            triple = random_triple(rng)
            key = simulation_fingerprint(*triple)
            ident = triple_identity(triple)
            if key in seen:
                # A repeated key is only legal for a content-equal triple.
                assert seen[key] == ident
            seen[key] = ident
        assert len(set(seen)) == len(seen)

    def test_equal_triples_always_hit(self):
        rng = random.Random(7)
        cache = DurationCache()
        for i in range(100):
            scenario, tiles, n_fact, n_gen = random_triple(rng)
            key = cache.key_for(scenario, tiles, n_fact, n_gen)
            cache.put(key, float(i))
            # A content-equal rebuild of the triple must produce a hit.
            clone = Scenario(
                key=scenario.key, site=scenario.site, counts=scenario.counts,
                workload=scenario.workload, mode=scenario.mode,
            )
            assert cache.get(cache.key_for(clone, tiles, n_fact, n_gen)) == float(i)
        assert cache.hits == 100
        assert cache.hit_rate == 1.0

    def test_key_ignores_subfigure_letter_but_not_content(self):
        s = get_scenario("b")
        relabeled = Scenario(key="z", site=s.site, counts=s.counts,
                             workload=s.workload, mode=s.mode)
        assert (simulation_fingerprint(s, 10, 5, 14)
                == simulation_fingerprint(relabeled, 10, 5, 14))
        assert (simulation_fingerprint(s, 10, 5, 14)
                != simulation_fingerprint(s, 12, 5, 14))
        assert (simulation_fingerprint(s, 10, 5, 14)
                != simulation_fingerprint(s, 10, 6, 14))
        assert (simulation_fingerprint(s, 10, 5, 14)
                != simulation_fingerprint(s, 10, 5, 5))

    def test_key_tracks_fault_schedule(self):
        from repro.faults import STATIONARY, NodeCrash, FaultSchedule

        s = get_scenario("b")
        crash = FaultSchedule(label="crash", faults=(NodeCrash(node=14),))
        base = simulation_fingerprint(s, 10, 5, 14)
        # No schedule (None) keeps the historical key layout byte-exact:
        # a warm pre-fault spill stays valid.
        assert simulation_fingerprint(s, 10, 5, 14, faults=None) == base
        # Any schedule -- even the empty stationary one -- keys apart, and
        # different schedules key apart from each other.
        faulted = simulation_fingerprint(
            s, 10, 5, 14, faults=crash.fingerprint()
        )
        stationary = simulation_fingerprint(
            s, 10, 5, 14, faults=STATIONARY.fingerprint()
        )
        assert base != faulted != stationary
        assert DurationCache().key_for(
            s, 10, 5, 14, faults=crash.fingerprint()
        ) == faulted

    def test_key_tracks_perfmodel_calibration(self):
        from repro.runtime import PerfModel

        s = get_scenario("b")
        base = PerfModel()
        retuned = PerfModel(overhead_s=base.overhead_s * 2)
        assert (simulation_fingerprint(s, 10, 5, 14, base)
                != simulation_fingerprint(s, 10, 5, 14, retuned))
        # Efficiency-table insertion order must not leak into the key.
        shuffled = PerfModel(
            efficiency=dict(reversed(list(base.efficiency.items())))
        )
        assert (simulation_fingerprint(s, 10, 5, 14, base)
                == simulation_fingerprint(s, 10, 5, 14, shuffled))


class TestLRU:
    def test_eviction_bounds(self):
        rng = random.Random(3)
        maxsize = 16
        cache = DurationCache(maxsize=maxsize)
        keys = [f"key-{i}" for i in range(100)]
        for i, key in enumerate(keys):
            cache.put(key, float(i))
            assert len(cache) <= maxsize
            if rng.random() < 0.3 and i >= 1:
                cache.get(rng.choice(keys[: i + 1]))  # random LRU churn
        assert len(cache) == maxsize

    def test_least_recently_used_goes_first(self):
        cache = DurationCache(maxsize=2)
        cache.put("a", 1.0)
        cache.put("b", 2.0)
        assert cache.get("a") == 1.0   # refresh a; b becomes LRU
        cache.put("c", 3.0)            # evicts b
        assert "b" not in cache
        assert cache.get("a") == 1.0
        assert cache.get("c") == 3.0
        assert cache.get("b") is None

    def test_invalid_maxsize_rejected(self):
        with pytest.raises(ValueError):
            DurationCache(maxsize=0)


class TestDiskSpill:
    def test_round_trip_is_exact(self, tmp_path):
        rng = random.Random(11)
        path = tmp_path / "spill.json"
        cache = DurationCache(spill_path=path)
        expected = {}
        for triple in (random_triple(rng) for _ in range(50)):
            key = simulation_fingerprint(*triple)
            value = rng.uniform(0.0, 1e6)
            cache.put(key, value)
            expected[key] = value
        cache.spill()

        fresh = DurationCache(spill_path=path)
        assert fresh.load() == len(expected)
        for key, value in expected.items():
            assert fresh.get(key) == value  # bit-exact through JSON
        assert fresh.misses == 0

    def test_load_missing_file_is_noop(self, tmp_path):
        cache = DurationCache(spill_path=tmp_path / "absent.json")
        assert cache.load() == 0
        assert len(cache) == 0

    def test_load_rejects_stale_model_version(self, tmp_path):
        import json

        path = tmp_path / "spill.json"
        path.write_text(json.dumps({
            "format": SPILL_FORMAT_VERSION,
            "model_version": MODEL_VERSION + 1,
            "entries": {"k": 1.0},
        }))
        cache = DurationCache(spill_path=path)
        assert cache.load() == 0

    def test_no_spill_path_raises(self):
        cache = DurationCache()
        with pytest.raises(ValueError):
            cache.spill()
        with pytest.raises(ValueError):
            cache.load()
