"""Tests for the resampling strategy runner (on synthetic banks)."""

import numpy as np
import pytest

from repro.evaluate import evaluate_scenario, run_strategy, run_strategy_once
from repro.measure import synthetic_bank
from repro.strategies import AllNodesStrategy, make_strategy


@pytest.fixture(scope="module")
def bank():
    # Convex curve with minimum at n=6, all-nodes at n=14 clearly worse.
    return synthetic_bank(
        f=lambda n: 10.0 + 30.0 / n + 0.7 * n,
        actions=range(2, 15),
        lp=lambda n: 30.0 / n + 1.0,
        group_boundaries=(2, 8, 14),
        noise_sd=0.3,
        seed=3,
        label="synthetic convex",
    )


class TestRunStrategyOnce:
    def test_total_is_sum_of_resamples(self, bank):
        rng = np.random.default_rng(0)
        s = AllNodesStrategy(bank.action_space())
        total = run_strategy_once(s, bank, iterations=10, rng=rng)
        assert total == pytest.approx(sum(s.ys))
        assert s.iteration == 10

    def test_observations_come_from_bank(self, bank):
        rng = np.random.default_rng(1)
        s = AllNodesStrategy(bank.action_space())
        run_strategy_once(s, bank, iterations=5, rng=rng)
        assert all(y in bank.samples[14] for y in s.ys)


class TestRunStrategy:
    def test_shape_and_determinism(self, bank):
        t1 = run_strategy("DC", bank, iterations=20, reps=5, base_seed=7)
        t2 = run_strategy("DC", bank, iterations=20, reps=5, base_seed=7)
        assert t1.shape == (5,)
        assert np.allclose(t1, t2)

    def test_different_seeds_differ(self, bank):
        t1 = run_strategy("DC", bank, iterations=20, reps=3, base_seed=1)
        t2 = run_strategy("DC", bank, iterations=20, reps=3, base_seed=2)
        assert not np.allclose(t1, t2)


class TestEvaluateScenario:
    @pytest.fixture(scope="class")
    def evaluation(self, bank):
        return evaluate_scenario(
            bank, strategies=("DC", "GP-discontinuous"), iterations=40, reps=5
        )

    def test_baselines_ordered(self, evaluation):
        assert evaluation.oracle_mean < evaluation.all_nodes_mean

    def test_best_action_matches_bank(self, bank, evaluation):
        assert evaluation.best_action == bank.best_action()

    def test_summaries_present(self, evaluation):
        names = [s.name for s in evaluation.summaries]
        assert names == ["DC", "GP-discontinuous"]

    def test_strategies_beat_all_nodes_on_easy_curve(self, evaluation):
        for s in evaluation.summaries:
            assert s.mean_total < evaluation.all_nodes_mean

    def test_gains_consistent(self, evaluation):
        for s in evaluation.summaries:
            expected = (
                (evaluation.all_nodes_mean - s.mean_total)
                / evaluation.all_nodes_mean * 100.0
            )
            assert s.gain_pct == pytest.approx(expected)

    def test_summary_lookup(self, evaluation):
        assert evaluation.summary("DC").name == "DC"
        with pytest.raises(KeyError):
            evaluation.summary("nope")
        assert evaluation.best_strategy().name in ("DC", "GP-discontinuous")
