"""Tests for the Figure 7 overhead measurement."""

import pytest

from repro.evaluate import measure_overhead, strategy_space_for
from repro.platform import get_scenario


@pytest.fixture(autouse=True)
def small_workload(monkeypatch):
    monkeypatch.setenv("REPRO_TILES_101", "8")


class TestStrategySpace:
    def test_space_has_lp(self):
        space = strategy_space_for(get_scenario("b"))
        assert space.lp_bound is not None
        assert space.lp_bound(4) > 0
        assert space.n_total == 14


class TestOverhead:
    @pytest.fixture(scope="class")
    def result(self):
        return measure_overhead("b", reps=2, iterations=12)

    def test_shape(self, result):
        assert result.per_iteration.shape == (2, 12)
        assert result.iteration_durations.shape == (2, 12)

    def test_overheads_nonnegative(self, result):
        assert (result.per_iteration >= 0).all()

    def test_relative_overhead_small(self, result):
        """Strategy cost is negligible vs iteration time (paper: <1%)."""
        assert result.relative_overhead < 0.05

    def test_steady_state_defined(self, result):
        assert result.steady_state_mean >= 0
        assert len(result.mean_per_iteration) == 12
