"""Tests for Matern covariance kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geostat import MaternParams, covariance_matrix, matern_correlation


class TestMaternCorrelation:
    def test_zero_distance_is_one(self):
        for nu in (0.5, 1.5, 2.5, 0.8):
            assert matern_correlation(np.array([0.0]), 0.1, nu)[0] == pytest.approx(1.0)

    def test_exponential_special_case(self):
        r = np.linspace(0, 1, 20)
        assert np.allclose(matern_correlation(r, 0.2, 0.5), np.exp(-r / 0.2))

    def test_decreasing_in_distance(self):
        r = np.linspace(0, 2, 50)
        for nu in (0.5, 1.5, 2.5, 1.0):
            c = matern_correlation(r, 0.3, nu)
            assert np.all(np.diff(c) <= 1e-12)

    def test_general_matches_closed_form(self):
        """The Bessel branch agrees with the nu=1.5 closed form."""
        r = np.linspace(0.01, 1, 25)
        closed = matern_correlation(r, 0.2, 1.5)
        general = matern_correlation(r, 0.2, 1.5000001)
        assert np.allclose(closed, general, atol=1e-4)

    def test_bounded(self):
        r = np.linspace(0, 10, 100)
        c = matern_correlation(r, 0.1, 2.0)
        assert np.all((c >= -1e-12) & (c <= 1.0 + 1e-12))


class TestCovarianceMatrix:
    def locations(self, n=30, seed=0):
        return np.random.default_rng(seed).uniform(size=(n, 2))

    def test_symmetric(self):
        sigma = covariance_matrix(self.locations(), MaternParams())
        assert np.allclose(sigma, sigma.T)

    def test_diagonal_is_variance_plus_nugget(self):
        p = MaternParams(variance=2.0, nugget=0.1)
        sigma = covariance_matrix(self.locations(), p)
        assert np.allclose(np.diag(sigma), 2.1)

    @settings(max_examples=20, deadline=None)
    @given(
        nu=st.sampled_from([0.5, 1.5, 2.5]),
        rng_range=st.floats(min_value=0.02, max_value=0.5),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_positive_definite(self, nu, rng_range, seed):
        p = MaternParams(range_=rng_range, smoothness=nu, nugget=1e-6)
        sigma = covariance_matrix(self.locations(seed=seed), p)
        eigmin = np.linalg.eigvalsh(sigma).min()
        assert eigmin > 0

    def test_params_validation(self):
        with pytest.raises(ValueError):
            MaternParams(variance=0.0)
        with pytest.raises(ValueError):
            MaternParams(range_=-1.0)
        with pytest.raises(ValueError):
            MaternParams(nugget=-1e-3)
