"""Tests for the adaptive ExaGeoStat application loop."""

import numpy as np
import pytest

from repro.geostat import (
    ExaGeoStat,
    MaternParams,
    make_covariance,
    synthetic_dataset,
)
from repro.platform import get_scenario
from repro.workload import Workload


@pytest.fixture(scope="module")
def app():
    cluster = get_scenario("b").build_cluster()
    workload = Workload(name="101", t=8, nb=64)
    return ExaGeoStat(cluster, workload)


class _RoundRobinController:
    """Cycles through node counts; records observations."""

    def __init__(self, counts):
        self.counts = list(counts)
        self.i = 0
        self.observed = []

    def propose(self):
        n = self.counts[self.i % len(self.counts)]
        self.i += 1
        return n

    def observe(self, n, duration):
        self.observed.append((n, duration))


class TestMeasurement:
    def test_measure_positive(self, app):
        assert app.measure(4) > 0

    def test_deterministic_without_noise(self, app):
        assert app.measure(4) == app.measure(4)

    def test_cache_hits_are_fast(self, app):
        import time

        app.measure(5)
        t0 = time.perf_counter()
        app.measure(5)
        assert time.perf_counter() - t0 < 0.01

    def test_noise_model_applied(self):
        cluster = get_scenario("b").build_cluster()
        workload = Workload(name="101", t=6, nb=64)
        app = ExaGeoStat(
            cluster, workload, noise=lambda d, rng: d + rng.normal(0, 0.5)
        )
        samples = {app.measure(3) for _ in range(10)}
        assert len(samples) > 1

    def test_duration_never_negative(self):
        cluster = get_scenario("b").build_cluster()
        workload = Workload(name="101", t=4, nb=32)
        app = ExaGeoStat(cluster, workload, noise=lambda d, rng: d - 1e9)
        assert app.measure(2) == 0.0


class TestAdaptiveRun:
    def test_records_controller_choices(self, app):
        ctrl = _RoundRobinController([2, 5, 8])
        result = app.run(ctrl, iterations=6)
        assert result.chosen_counts == [2, 5, 8, 2, 5, 8]
        assert len(ctrl.observed) == 6

    def test_total_time_is_sum(self, app):
        ctrl = _RoundRobinController([3])
        result = app.run(ctrl, iterations=4)
        assert result.total_time == pytest.approx(
            sum(r.duration for r in result.records)
        )

    def test_overhead_measured(self, app):
        ctrl = _RoundRobinController([3])
        result = app.run(ctrl, iterations=3)
        assert all(r.controller_overhead >= 0 for r in result.records)

    def test_run_fixed_constant(self, app):
        result = app.run_fixed(6, iterations=3)
        assert result.chosen_counts == [6, 6, 6]

    def test_invalid_iterations(self, app):
        with pytest.raises(ValueError):
            app.run(_RoundRobinController([2]), iterations=0)


class TestLikelihoodRun:
    def test_full_pipeline(self):
        cluster = get_scenario("b").build_cluster()
        workload = Workload(name="101", t=4, nb=64)
        app = ExaGeoStat(cluster, workload)
        cov = make_covariance(MaternParams(range_=0.2, nugget=1e-4))
        data = synthetic_dataset(32, cov, seed=5)
        ctrl = _RoundRobinController([2, 4])
        result = app.run_with_likelihood(ctrl, data, 0.05, 0.6, iterations=8)
        assert len(result.records) == 8
        assert all(r.theta is not None for r in result.records)
        assert all(np.isfinite(r.log_likelihood) for r in result.records)
        # Likelihood search should visit thetas inside the bracket.
        assert all(0.05 < r.theta < 0.6 for r in result.records)
