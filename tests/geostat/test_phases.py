"""Tests for the five-phase iteration graph."""

import pytest

from repro.geostat import IterationPlan, PHASES, build_iteration_graph
from repro.linalg import kernels
from repro.platform import get_scenario
from repro.workload import Workload


@pytest.fixture(scope="module")
def small_workload():
    return Workload(name="101", t=8, nb=64)


@pytest.fixture(scope="module")
def cluster():
    return get_scenario("b").build_cluster()  # G5K 2L-6M-6S, 14 nodes


class TestIterationGraph:
    def test_all_phases_present(self, cluster, small_workload):
        graph = build_iteration_graph(
            cluster, small_workload, IterationPlan(n_fact=4, n_gen=14)
        )
        phases = {t.phase for t in graph.tasks}
        assert phases == set(PHASES)

    def test_task_counts(self, cluster, small_workload):
        t = small_workload.t
        graph = build_iteration_graph(
            cluster, small_workload, IterationPlan(n_fact=4, n_gen=14)
        )
        counts = graph.counts_by_name()
        lower = t * (t + 1) // 2
        assert counts["dcmg"] == lower
        for name, expected in kernels.cholesky_task_counts(t).items():
            assert counts[name] == expected
        assert counts["det"] == t
        assert counts["dot"] == t

    def test_acyclic(self, cluster, small_workload):
        graph = build_iteration_graph(
            cluster, small_workload, IterationPlan(n_fact=2, n_gen=5)
        )
        graph.validate_acyclic()

    def test_factorization_restricted_to_n_fact(self, cluster, small_workload):
        graph = build_iteration_graph(
            cluster, small_workload, IterationPlan(n_fact=3, n_gen=14)
        )
        fact_nodes = {t.node for t in graph.phase_tasks("factorization")}
        assert max(fact_nodes) < 3

    def test_generation_spreads_over_n_gen(self, cluster, small_workload):
        graph = build_iteration_graph(
            cluster, small_workload, IterationPlan(n_fact=3, n_gen=14)
        )
        gen_nodes = {t.node for t in graph.phase_tasks("generation")}
        assert len(gen_nodes) > 5  # most of the 14 nodes participate

    def test_factorization_depends_on_generation(self, cluster, small_workload):
        graph = build_iteration_graph(
            cluster, small_workload, IterationPlan(n_fact=2, n_gen=2)
        )
        preds = graph.predecessors()
        first_potrf = next(
            t for t in graph.tasks if t.name == "potrf" and t.tag == (0, 0, 0)
        )
        pred_names = {graph.tasks[p].name for p in preds[first_potrf.tid]}
        assert "dcmg" in pred_names

    def test_plan_validation(self, cluster, small_workload):
        with pytest.raises(ValueError):
            build_iteration_graph(
                cluster, small_workload, IterationPlan(n_fact=99, n_gen=1)
            )
        with pytest.raises(ValueError):
            IterationPlan(n_fact=0, n_gen=1)
