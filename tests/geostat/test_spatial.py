"""Tests for synthetic spatial data generation."""

import numpy as np
import pytest

from repro.geostat import (
    MaternParams,
    SpatialData,
    jittered_grid,
    make_covariance,
    synthetic_dataset,
)


class TestJitteredGrid:
    def test_shape(self):
        rng = np.random.default_rng(0)
        assert jittered_grid(25, rng).shape == (25, 2)

    def test_non_square_count(self):
        rng = np.random.default_rng(0)
        assert jittered_grid(10, rng).shape == (10, 2)

    def test_in_unit_square(self):
        rng = np.random.default_rng(1)
        pts = jittered_grid(49, rng, jitter=0.4)
        assert np.all(pts >= 0.0) and np.all(pts <= 1.0)

    def test_zero_jitter_is_regular(self):
        rng = np.random.default_rng(2)
        pts = jittered_grid(4, rng, jitter=0.0)
        assert np.allclose(sorted(set(np.round(pts[:, 0], 9))), [0.25, 0.75])

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            jittered_grid(0, rng)
        with pytest.raises(ValueError):
            jittered_grid(4, rng, jitter=0.6)


class TestSyntheticDataset:
    def test_reproducible(self):
        cov = make_covariance(MaternParams())
        d1 = synthetic_dataset(16, cov, seed=7)
        d2 = synthetic_dataset(16, cov, seed=7)
        assert np.array_equal(d1.observations, d2.observations)

    def test_different_seeds_differ(self):
        cov = make_covariance(MaternParams())
        d1 = synthetic_dataset(16, cov, seed=1)
        d2 = synthetic_dataset(16, cov, seed=2)
        assert not np.array_equal(d1.observations, d2.observations)

    def test_marginal_variance_plausible(self):
        """With variance 1, sample variance over many points is near 1."""
        cov = make_covariance(MaternParams(variance=1.0, range_=0.02))
        data = synthetic_dataset(400, cov, seed=3)
        assert 0.6 < np.var(data.observations) < 1.6

    def test_spatialdata_validation(self):
        with pytest.raises(ValueError):
            SpatialData(np.zeros((3, 3)), np.zeros(3))
        with pytest.raises(ValueError):
            SpatialData(np.zeros((3, 2)), np.zeros(4))
