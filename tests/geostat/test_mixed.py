"""Tests for the mixed-precision trade-off experiment."""

import pytest

from repro.geostat import mixed_precision_tradeoff
from repro.linalg import PrecisionPolicy


@pytest.fixture(autouse=True)
def small(monkeypatch):
    monkeypatch.setenv("REPRO_TILES_128", "10")


class TestTradeoff:
    @pytest.fixture(scope="class")
    def rows(self):
        import os

        os.environ["REPRO_TILES_128"] = "10"
        return mixed_precision_tradeoff(
            [1, 3, 10], scenario_key="c", n_points=48, seed=1
        )

    def test_rows_structure(self, rows):
        assert [r.dp_bands for r in rows] == [1, 3, 10]
        assert all(r.iteration_time > 0 for r in rows)

    def test_dp_fraction_monotone(self, rows):
        fracs = [r.dp_fraction for r in rows]
        assert fracs == sorted(fracs)
        assert fracs[-1] == pytest.approx(1.0)

    def test_full_precision_is_exact(self, rows):
        assert rows[-1].loglik_error == pytest.approx(0.0, abs=1e-9)

    def test_fewer_bands_faster(self, rows):
        assert rows[0].iteration_time < rows[-1].iteration_time

    def test_accuracy_degrades_with_fewer_bands(self, rows):
        assert rows[0].loglik_error >= rows[-1].loglik_error

    def test_validation(self):
        with pytest.raises(ValueError):
            mixed_precision_tradeoff([0], scenario_key="c", n_points=32)
