"""Tests for the tiled log-likelihood pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geostat import (
    MaternParams,
    direct_log_likelihood,
    golden_section_range_search,
    log_likelihood,
    make_covariance,
    synthetic_dataset,
    tile_size_for,
)


@pytest.fixture(scope="module")
def data():
    cov = make_covariance(MaternParams(range_=0.15, nugget=1e-4))
    return synthetic_dataset(64, cov, seed=11)


class TestTileSizeFor:
    def test_divides(self):
        nb = tile_size_for(64, 8)
        assert 64 % nb == 0
        assert 64 // nb >= 8

    def test_prime_falls_back(self):
        assert tile_size_for(13, 4) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            tile_size_for(0, 4)


class TestLogLikelihood:
    def test_matches_direct(self, data):
        p = MaternParams(range_=0.15, nugget=1e-4)
        tiled = log_likelihood(data, p).log_likelihood
        assert tiled == pytest.approx(direct_log_likelihood(data, p), rel=1e-9)

    def test_breakdown_components(self, data):
        p = MaternParams(range_=0.1, nugget=1e-4)
        res = log_likelihood(data, p)
        from repro.geostat import covariance_matrix

        sigma = covariance_matrix(data.locations, p)
        assert res.log_det == pytest.approx(np.linalg.slogdet(sigma)[1], rel=1e-9)
        quad = data.observations @ np.linalg.solve(sigma, data.observations)
        assert res.quadratic_form == pytest.approx(quad, rel=1e-9)

    def test_indivisible_tile_size_rejected(self, data):
        with pytest.raises(ValueError):
            log_likelihood(data, MaternParams(), nb=7)

    @settings(max_examples=10, deadline=None)
    @given(range_=st.floats(min_value=0.05, max_value=0.5))
    def test_property_tiled_equals_direct(self, data, range_):
        p = MaternParams(range_=range_, nugget=1e-4)
        assert log_likelihood(data, p, nb=16).log_likelihood == pytest.approx(
            direct_log_likelihood(data, p), rel=1e-8
        )

    def test_true_theta_scores_well(self, data):
        """The generating range should beat far-off candidates."""
        true = log_likelihood(data, MaternParams(range_=0.15, nugget=1e-4))
        off = log_likelihood(data, MaternParams(range_=0.9, nugget=1e-4))
        assert true.log_likelihood > off.log_likelihood


class TestGoldenSection:
    def test_yields_requested_iterations(self, data):
        steps = list(golden_section_range_search(data, 0.02, 0.8, iterations=10))
        assert len(steps) == 10

    def test_converges_toward_true_range(self, data):
        steps = list(golden_section_range_search(data, 0.02, 0.8, iterations=20))
        best = max(steps, key=lambda s: s[1])
        assert 0.05 < best[0] < 0.45  # true range is 0.15

    def test_validation(self, data):
        with pytest.raises(ValueError):
            list(golden_section_range_search(data, 0.5, 0.1, iterations=5))
        with pytest.raises(ValueError):
            list(golden_section_range_search(data, 0.1, 0.5, iterations=0))
