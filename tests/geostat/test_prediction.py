"""Tests for kriging prediction of missing observations."""

import numpy as np
import pytest

from repro.geostat import (
    MaternParams,
    SpatialData,
    cross_covariance,
    covariance_matrix,
    holdout_experiment,
    make_covariance,
    predict_missing,
    synthetic_dataset,
)


@pytest.fixture(scope="module")
def setup():
    params = MaternParams(variance=1.0, range_=0.2, smoothness=0.5, nugget=1e-4)
    data = synthetic_dataset(64, make_covariance(params), seed=9)
    rng = np.random.default_rng(1)
    missing = rng.uniform(0.1, 0.9, size=(10, 2))
    return params, data, missing


class TestPredictMissing:
    def test_matches_dense_oracle(self, setup):
        params, data, missing = setup
        result = predict_missing(data, missing, params)
        sigma_oo = covariance_matrix(data.locations, params)
        sigma_mo = cross_covariance(missing, data.locations, params)
        expected = sigma_mo @ np.linalg.solve(sigma_oo, data.observations)
        assert np.allclose(result.mean, expected, rtol=1e-8)

    def test_variance_matches_dense_oracle(self, setup):
        params, data, missing = setup
        result = predict_missing(data, missing, params)
        sigma_oo = covariance_matrix(data.locations, params)
        sigma_mo = cross_covariance(missing, data.locations, params)
        var = (
            params.variance + params.nugget
            - np.einsum("ij,ji->i", sigma_mo, np.linalg.solve(sigma_oo, sigma_mo.T))
        )
        assert np.allclose(result.sd**2, var, rtol=1e-6, atol=1e-10)

    def test_prediction_at_observed_point_recovers_value(self, setup):
        params, data, _ = setup
        result = predict_missing(data, data.locations[:3], params)
        # With a tiny nugget the predictor nearly interpolates.
        assert np.allclose(result.mean, data.observations[:3], atol=0.05)
        assert np.all(result.sd[:3] < 0.1)

    def test_sd_grows_far_from_data(self, setup):
        params, data, _ = setup
        near = data.locations[0][None, :] + 0.01
        far = np.array([[5.0, 5.0]])
        r_near = predict_missing(data, near, params)
        r_far = predict_missing(data, far, params)
        assert r_far.sd[0] > r_near.sd[0]
        # Far away, the predictor reverts to the prior.
        assert abs(r_far.mean[0]) < 0.05
        assert r_far.sd[0] == pytest.approx(
            np.sqrt(params.variance + params.nugget), rel=1e-3
        )

    def test_shape_validation(self, setup):
        params, data, _ = setup
        with pytest.raises(ValueError):
            predict_missing(data, np.zeros((3, 3)), params)

    def test_mspe_validation(self, setup):
        params, data, missing = setup
        result = predict_missing(data, missing, params)
        with pytest.raises(ValueError):
            result.mspe(np.zeros(3))


class TestHoldout:
    def test_kriging_beats_trivial(self):
        params = MaternParams(variance=1.0, range_=0.3, nugget=1e-4)
        out = holdout_experiment(n_total=80, n_missing=16, params=params, seed=2)
        assert out["mspe_kriging"] < out["mspe_trivial"]

    def test_coverage_reasonable(self):
        params = MaternParams(variance=1.0, range_=0.25, nugget=1e-3)
        out = holdout_experiment(n_total=100, n_missing=20, params=params, seed=3)
        assert out["coverage95"] >= 0.7

    def test_validation(self):
        with pytest.raises(ValueError):
            holdout_experiment(10, 10, MaternParams())
