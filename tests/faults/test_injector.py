"""Tests for the fault injector: determinism, identity, arithmetic.

Two acceptance-grade properties live here:

* an **empty schedule is the identity** -- running the harness with a
  stationary injector produces byte-identical cells to running with no
  injector at all (same RNG draws, same totals, same arrays);
* **fault application is worker-count independent** -- the same faulted
  campaign at ``workers=1`` and ``workers=2`` produces bit-identical
  results.
"""

import numpy as np
import pytest

from repro.evaluate.parallel import plan_cells, run_cells
from repro.faults import (
    FaultInjector,
    FaultSchedule,
    InterferenceBurst,
    NetworkDegradation,
    NodeCrash,
    NodeSlowdown,
    STATIONARY,
)
from repro.measure.bank import synthetic_bank

ACTIONS = tuple(range(1, 9))


def curve(n):
    return 30.0 / n + 0.4 * (n - 1)


@pytest.fixture
def bank():
    return synthetic_bank(curve, actions=ACTIONS, noise_sd=0.3, k=25,
                          seed=11, label="synth")


def cells_for(bank, strategies=("DC", "UCB"), reps=3):
    return plan_cells([bank.label], list(strategies), reps,
                      include_baselines=False)


def as_tuples(results):
    """Cell results as comparable plain tuples."""
    return [
        (r.cell, r.total, r.chosen.tolist(), r.durations.tolist())
        for r in results
    ]


class TestIdentity:
    def test_empty_schedule_is_byte_identical_to_no_injector(self, bank):
        cells = cells_for(bank)
        injector = FaultInjector(STATIONARY, bank.actions, 20)
        plain = run_cells({bank.label: bank}, cells, 20)
        faulted = run_cells({bank.label: bank}, cells, 20,
                            injector=injector)
        assert as_tuples(plain) == as_tuples(faulted)

    def test_inactive_faults_do_not_perturb(self, bank):
        # Faults whose window never opens must also be the identity.
        schedule = FaultSchedule(
            label="later",
            faults=(NodeCrash(node=8, start=500),
                    InterferenceBurst(magnitude_s=2.0, start=500)),
        )
        injector = FaultInjector(schedule, bank.actions, 20)
        for t in range(20):
            inj = injector.plan(t, 8)
            assert inj.scale == 1.0 and inj.shift == 0.0
            assert not inj.degraded and inj.effective_n == 8


class TestWorkerEquivalence:
    def test_faulted_run_bit_identical_across_worker_counts(self, bank):
        schedule = FaultSchedule(
            label="mixed",
            faults=(
                NodeCrash(node=8, start=6),
                NodeSlowdown(node=4, gflops_factor=0.5, start=3, end=12),
                InterferenceBurst(magnitude_s=0.8, start=8, jitter=0.3),
            ),
            seed=5,
        )
        injector = FaultInjector(schedule, bank.actions, 18)
        cells = cells_for(bank, strategies=("DC", "UCB", "GP-UCB"), reps=2)
        serial = run_cells({bank.label: bank}, cells, 18, injector=injector)
        pooled = run_cells({bank.label: bank}, cells, 18, injector=injector,
                           workers=2)
        assert as_tuples(serial) == as_tuples(pooled)


class TestFeasibility:
    def test_crash_shrinks_feasible_space(self):
        schedule = FaultSchedule(
            label="c", faults=(NodeCrash(node=7, start=5),
                               NodeCrash(node=8, start=5, end=10)),
        )
        injector = FaultInjector(schedule, ACTIONS, 15)
        assert injector.max_feasible(0) == 8
        assert injector.max_feasible(5) == 6   # two nodes down
        assert injector.max_feasible(10) == 7  # node 8 recovered
        assert injector.feasible_actions(5) == tuple(range(1, 7))
        event = injector.event_for(5)
        assert event.max_feasible == 6 and event.crashed == (7, 8)

    def test_degraded_proposal_pays_worst_penalty(self):
        schedule = FaultSchedule(
            label="c", faults=(NodeCrash(node=8, start=0, penalty=1.5),
                               NodeCrash(node=7, start=0, penalty=2.0)),
        )
        injector = FaultInjector(schedule, ACTIONS, 5)
        inj = injector.plan(0, 8)
        assert inj.degraded and inj.effective_n == 6
        assert inj.scale == pytest.approx(2.0)
        # A feasible proposal pays nothing.
        ok = injector.plan(0, 5)
        assert not ok.degraded and ok.scale == 1.0

    def test_schedule_infeasible_for_bank_rejected(self):
        schedule = FaultSchedule(label="x", faults=(NodeCrash(node=99),))
        with pytest.raises(ValueError):
            FaultInjector(schedule, ACTIONS, 10)


class TestArithmetic:
    def test_slowdown_scales_only_including_actions(self):
        schedule = FaultSchedule(
            label="s",
            faults=(NodeSlowdown(node=4, gflops_factor=0.5),),
        )
        injector = FaultInjector(schedule, ACTIONS, 5)
        assert injector.plan(0, 6).scale == pytest.approx(2.0)
        assert injector.plan(0, 4).scale == pytest.approx(2.0)
        assert injector.plan(0, 3).scale == 1.0  # dodges the straggler

    def test_network_degradation_hits_large_actions_harder(self):
        schedule = FaultSchedule(
            label="n",
            faults=(NetworkDegradation(bandwidth_factor=0.5,
                                       comm_share=0.4),),
        )
        injector = FaultInjector(schedule, ACTIONS, 5)
        s1 = injector.plan(0, 1).scale
        s4 = injector.plan(0, 4).scale
        s8 = injector.plan(0, 8).scale
        assert s1 == 1.0          # single node: no communication
        assert s1 < s4 < s8
        assert s8 == pytest.approx(1.0 + 0.4 * (1 / 0.5 - 1.0))

    def test_interference_shift_and_jitter_determinism(self):
        schedule = FaultSchedule(
            label="i",
            faults=(InterferenceBurst(magnitude_s=1.5, start=2, end=8,
                                      jitter=0.4),),
            seed=9,
        )
        a = FaultInjector(schedule, ACTIONS, 10)
        b = FaultInjector(schedule, ACTIONS, 10)
        shifts_a = [a.plan(t, 4).shift for t in range(10)]
        shifts_b = [b.plan(t, 4).shift for t in range(10)]
        assert shifts_a == shifts_b
        assert shifts_a[0] == 0.0 and shifts_a[8] == 0.0
        for t in range(2, 8):
            assert 1.5 * 0.6 <= shifts_a[t] <= 1.5 * 1.4
        # A different seed draws different jitter.
        reseeded = FaultInjector(
            FaultSchedule(label="i", faults=schedule.faults, seed=10),
            ACTIONS, 10,
        )
        assert [reseeded.plan(t, 4).shift for t in range(2, 8)] != shifts_a[2:8]

    def test_perturbed_duration_never_negative(self):
        schedule = FaultSchedule(
            label="odd", faults=(InterferenceBurst(magnitude_s=1.0),),
        )
        injector = FaultInjector(schedule, ACTIONS, 3)
        assert injector.perturb(0, 4, 0.0) >= 0.0


class TestRegretQueries:
    def test_expected_duration_matches_plan(self):
        schedule = FaultSchedule(
            label="c", faults=(NodeCrash(node=8, start=0, penalty=1.5),),
        )
        injector = FaultInjector(schedule, ACTIONS, 5)
        means = {n: curve(n) for n in ACTIONS}
        # Proposing the crashed 8 runs as 7 with the penalty folded in.
        assert injector.expected_duration(0, 8, means) == pytest.approx(
            curve(7) * 1.5
        )
        assert injector.expected_duration(0, 5, means) == pytest.approx(
            curve(5)
        )

    def test_oracle_plays_best_feasible(self):
        schedule = FaultSchedule(
            label="c", faults=(NodeCrash(node=8, start=0),
                               NodeCrash(node=7, start=0)),
        )
        injector = FaultInjector(schedule, ACTIONS, 5)
        means = {n: curve(n) for n in ACTIONS}
        best, duration = injector.oracle_duration(0, means)
        assert best == 6                        # best surviving action
        assert duration == pytest.approx(curve(6))

    def test_fingerprint_is_the_schedules(self):
        schedule = FaultSchedule(label="c", faults=(NodeCrash(node=8),))
        injector = FaultInjector(schedule, ACTIONS, 5)
        assert injector.fingerprint() == schedule.fingerprint()
