"""Tests for the online change-point detectors.

The headline here is the **pinned stationary false-positive bound**: on
30 stationary Gaussian repetitions of the Figure 6 shape (127
iterations), the default Page-Hinkley configuration may alarm on at most
``STATIONARY_FP_BOUND`` of them.  Loosening the bound is an interface
change (the resilience layer's re-exploration budget is calibrated
against it).
"""

import numpy as np
import pytest

from repro.faults import (
    PageHinkleyDetector,
    STATIONARY_FP_BOUND,
    SlidingWindowDetector,
)

#: The Figure 6 evaluation shape the bound is pinned on.
REPS = 30
ITERATIONS = 127


def feed(detector, values):
    """Feed a sequence; return indices where the detector alarmed."""
    return [i for i, v in enumerate(values) if detector.update(v)]


class TestPageHinkley:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            PageHinkleyDetector(delta=-0.1)
        with pytest.raises(ValueError):
            PageHinkleyDetector(threshold=0.0)
        with pytest.raises(ValueError):
            PageHinkleyDetector(burn_in=1)

    def test_detects_upward_shift(self):
        rng = np.random.default_rng(1)
        trace = np.concatenate([
            10.0 + rng.normal(0.0, 0.5, 40),
            14.0 + rng.normal(0.0, 0.5, 40),
        ])
        detector = PageHinkleyDetector()
        hits = feed(detector, trace)
        assert hits, "a +8 sigma mean shift must be detected"
        assert 40 <= hits[0] < 60, "detection should follow the shift closely"
        assert detector.alarms[0].direction == "up"

    def test_detects_downward_shift_two_sided(self):
        rng = np.random.default_rng(2)
        trace = np.concatenate([
            14.0 + rng.normal(0.0, 0.5, 40),
            10.0 + rng.normal(0.0, 0.5, 40),
        ])
        hits = feed(PageHinkleyDetector(), trace)
        assert hits and 40 <= hits[0] < 60

    def test_one_sided_ignores_downward_shift(self):
        rng = np.random.default_rng(3)
        trace = np.concatenate([
            14.0 + rng.normal(0.0, 0.5, 40),
            10.0 + rng.normal(0.0, 0.5, 40),
        ])
        assert feed(PageHinkleyDetector(two_sided=False), trace) == []

    def test_resets_after_alarm_and_redetects(self):
        rng = np.random.default_rng(4)
        trace = np.concatenate([
            10.0 + rng.normal(0.0, 0.3, 30),
            15.0 + rng.normal(0.0, 0.3, 30),
            10.0 + rng.normal(0.0, 0.3, 30),
        ])
        detector = PageHinkleyDetector()
        hits = feed(detector, trace)
        assert len(hits) >= 2, "onset and clearing must both alarm"
        assert detector.alarms[0].direction == "up"
        assert detector.alarms[-1].direction == "down"
        assert detector.observations == 90

    def test_scale_relative_thresholds(self):
        # The same configuration must work regardless of the stream's
        # absolute magnitude: scale the whole trace 100x, same alarms.
        rng = np.random.default_rng(5)
        base = np.concatenate([
            10.0 + rng.normal(0.0, 0.5, 40),
            14.0 + rng.normal(0.0, 0.5, 40),
        ])
        hits_small = feed(PageHinkleyDetector(), base)
        hits_large = feed(PageHinkleyDetector(), base * 100.0)
        assert hits_small == hits_large

    def test_constant_stream_never_alarms(self):
        detector = PageHinkleyDetector()
        assert feed(detector, [7.0] * 100) == []

    def test_stationary_false_positive_bound(self):
        """The pinned bound: <= STATIONARY_FP_BOUND of 30 stationary reps."""
        tripped = 0
        for rep in range(REPS):
            rng = np.random.default_rng((2026, rep))
            trace = 10.0 + rng.normal(0.0, 0.5, ITERATIONS)
            if feed(PageHinkleyDetector(), trace):
                tripped += 1
        assert tripped / REPS <= STATIONARY_FP_BOUND, (
            f"{tripped}/{REPS} stationary repetitions alarmed; the pinned "
            f"bound is {STATIONARY_FP_BOUND:.0%}"
        )


class TestSlidingWindow:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowDetector(window=1)
        with pytest.raises(ValueError):
            SlidingWindowDetector(threshold=0.0)

    def test_detects_shift(self):
        rng = np.random.default_rng(6)
        trace = np.concatenate([
            10.0 + rng.normal(0.0, 0.3, 30),
            13.0 + rng.normal(0.0, 0.3, 30),
        ])
        detector = SlidingWindowDetector()
        hits = feed(detector, trace)
        assert hits and 30 <= hits[0] < 50
        assert detector.alarms[0].direction == "up"

    def test_stationary_stays_quiet(self):
        rng = np.random.default_rng(7)
        trace = 10.0 + rng.normal(0.0, 0.5, ITERATIONS)
        assert feed(SlidingWindowDetector(), trace) == []

    def test_needs_full_buffer(self):
        detector = SlidingWindowDetector(window=5)
        # 9 observations < 2 * window: never enough evidence to alarm.
        assert feed(detector, [1.0] * 4 + [100.0] * 5) == []
