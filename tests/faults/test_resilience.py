"""Tests for the ResilientStrategy wrapper."""

import numpy as np
import pytest

from repro.faults import FaultEvent, ResilientStrategy
from repro.faults.resilience import RESILIENT_BASES, resilient_name
from repro.strategies import ActionSpace, make_strategy


@pytest.fixture
def space():
    return ActionSpace(
        actions=tuple(range(1, 9)),
        n_total=8,
        group_boundaries=(4, 8),
        lp_bound=lambda n: 30.0 / n,
    )


def event(t, max_feasible, crashed=()):
    return FaultEvent(iteration=t, max_feasible=max_feasible,
                      crashed=tuple(crashed))


def drive(strategy, f, rounds, events=None):
    """Run propose/observe rounds against duration function ``f``."""
    events = events or {}
    actions = []
    for t in range(rounds):
        if t in events:
            strategy.on_fault_event(events[t])
        n = strategy.propose()
        actions.append(n)
        strategy.observe(n, f(t, n))
    return actions


class TestRegistration:
    def test_every_base_is_wrapped(self, space):
        for inner in RESILIENT_BASES:
            s = make_strategy(resilient_name(inner), space, seed=1)
            assert isinstance(s, ResilientStrategy)
            assert s.name == f"Resilient({inner})"
            assert s.inner == inner

    def test_unknown_inner_rejected(self, space):
        with pytest.raises(ValueError):
            ResilientStrategy(space, 0, inner="NoSuchStrategy")

    def test_parameter_validation(self, space):
        with pytest.raises(ValueError):
            ResilientStrategy(space, 0, window=0)
        with pytest.raises(ValueError):
            ResilientStrategy(space, 0, max_retries=-1)
        with pytest.raises(ValueError):
            ResilientStrategy(space, 0, failure_factor=1.0)


class TestDeterminism:
    @pytest.mark.parametrize("inner", ["DC", "UCB", "GP-discontinuous"])
    def test_same_seed_same_actions_with_events(self, space, inner):
        def f(t, n):
            noise = np.random.default_rng((t, n)).normal(0.0, 0.2)
            return max(30.0 / n + 0.4 * (n - 1) + noise, 0.0)

        events = {6: event(6, 5, crashed=(6, 7, 8)),
                  14: event(14, 8)}
        first = drive(make_strategy(resilient_name(inner), space, seed=2),
                      f, 20, events)
        second = drive(make_strategy(resilient_name(inner), space, seed=2),
                       f, 20, events)
        assert first == second


class TestContraction:
    def test_fault_event_contracts_and_reexpands(self, space):
        s = ResilientStrategy(space, 0, inner="UCB")
        s.on_fault_event(event(0, 5, crashed=(6, 7, 8)))
        assert s.current_space.actions == tuple(range(1, 6))
        assert s.contractions == 1
        s.on_fault_event(event(1, 8))
        assert s.current_space is s.full_space
        assert s.contractions == 2

    def test_noop_event_changes_nothing(self, space):
        s = ResilientStrategy(space, 0, inner="UCB")
        inner_before = s._inner
        s.on_fault_event(event(0, 8))
        assert s._inner is inner_before
        assert s.contractions == 0

    @pytest.mark.parametrize("inner", ["DC", "UCB", "GP-discontinuous"])
    def test_proposals_respect_contracted_space(self, space, inner):
        def f(t, n):
            return 30.0 / n + 0.4 * (n - 1)

        s = make_strategy(resilient_name(inner), space, seed=3)
        events = {5: event(5, 4, crashed=(5, 6, 7, 8))}
        actions = drive(s, f, 15, events)
        # Once the best arm (8) crashed, every proposal -- including any
        # the inner had pending for the crashed optimum -- stays clipped
        # inside the surviving space.
        assert all(a <= 4 for a in actions[5:]), actions

    @pytest.mark.parametrize("inner", ["DC", "UCB", "GP-discontinuous"])
    def test_single_action_degenerate_space(self, space, inner):
        def f(t, n):
            return 30.0 / n

        s = make_strategy(resilient_name(inner), space, seed=4)
        events = {3: event(3, 1, crashed=tuple(range(2, 9)))}
        actions = drive(s, f, 10, events)
        assert all(a == 1 for a in actions[3:]), actions

    def test_contraction_clears_moot_retry_and_quarantine(self, space):
        s = ResilientStrategy(space, 0, inner="UCB", failure_factor=2.0)
        s._retry_arm = 8
        s._retry_count = 1
        s._quarantine = {8: 100, 3: 100}
        s.on_fault_event(event(0, 5, crashed=(6, 7, 8)))
        assert s._retry_arm is None
        assert s._quarantine == {3: 100}


class TestRetriesAndQuarantine:
    def make(self, space):
        return ResilientStrategy(
            space, 0, inner="UCB", failure_factor=2.0, max_retries=1,
            detector_threshold=1e9,   # keep the detector out of this test
        )

    def test_transient_failure_triggers_immediate_retry(self, space):
        s = self.make(space)
        s.observe(4, 5.0)
        s.observe(4, 5.0)
        s.observe(4, 50.0)          # > 2 x median(5, 5): transient failure
        assert s.retries == 1
        assert s.propose() == 4     # same arm retried immediately

    def test_healthy_retry_closes_the_episode(self, space):
        s = self.make(space)
        s.observe(4, 5.0)
        s.observe(4, 5.0)
        s.observe(4, 50.0)
        assert s.propose() == 4
        s.observe(4, 5.0)           # retry came back healthy
        assert s._retry_arm is None
        assert s.quarantined_total == 0

    def test_persistent_failure_quarantines_with_backoff(self, space):
        s = self.make(space)
        s.observe(4, 5.0)
        s.observe(4, 5.0)
        s.observe(4, 50.0)          # failure -> retry episode
        s.observe(4, 50.0)          # retry also failed -> quarantine
        assert s.quarantined_total == 1
        assert s._quarantine[4] > s.iteration
        # While quarantined, proposals dodge the arm.
        for _ in range(3):
            assert s.propose() != 4

    def test_backoff_grows_and_caps(self, space):
        s = ResilientStrategy(space, 0, inner="UCB", backoff_base=2,
                              max_backoff=16)
        for strike in range(1, 7):
            s._quarantine_arm(4)
            span = s._quarantine[4] - s.iteration
            assert span == min(2 * 2 ** (strike - 1), 16)


class TestReexploration:
    def test_detector_alarm_rebuilds_the_inner(self, space):
        def f(t, n):
            return 6.0 if t < 25 else 30.0   # platform falls off a cliff

        s = make_strategy(resilient_name("UCB"), space, seed=5)
        drive(s, f, 45)
        assert s.reexplorations >= 1
        assert len(s.detector.alarms) >= 1

    def test_cooldown_bounds_rebuild_rate(self, space):
        def f(t, n):
            # Alternate wildly so the detector would alarm constantly.
            return 5.0 if t % 2 == 0 else 60.0

        s = make_strategy(resilient_name("UCB"), space, seed=6)
        s.cooldown = 10
        drive(s, f, 40)
        assert s.reexplorations <= 4   # 40 iterations / cooldown 10

    def test_replay_safety_classification(self, space):
        safe = make_strategy("GP-discontinuous", space, seed=0)
        also_safe = make_strategy("UCB", space, seed=0)
        unsafe = make_strategy("DC", space, seed=0)
        assert ResilientStrategy._replay_safe(safe)
        assert ResilientStrategy._replay_safe(also_safe)
        assert not ResilientStrategy._replay_safe(unsafe)

    def test_summary_counters(self, space):
        s = ResilientStrategy(space, 0, inner="UCB")
        summary = s.resilience_summary()
        assert summary == {
            "reexplorations": 0, "contractions": 0, "retries": 0,
            "quarantines": 0, "alarms": 0,
        }
