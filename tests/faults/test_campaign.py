"""Tests for the fault campaign driver.

The headline is the ISSUE's acceptance criterion: under the canned
``crash`` schedule, ``Resilient(GP-discontinuous)`` achieves *strictly
lower* cumulative expected regret than raw ``GP-discontinuous``.
"""

import json

import pytest

from repro.evaluate.faults_campaign import (
    CampaignRow,
    campaign_metrics,
    campaign_strategies,
    campaign_table,
    cumulative_fault_regret,
    run_campaign,
    write_campaign_report,
)
from repro.faults import FaultInjector, canned_schedules
from repro.measure.bank import synthetic_bank

ACTIONS = tuple(range(1, 9))
ITERATIONS = 30


def curve(n):
    return 30.0 / n + 0.4 * (n - 1)


def make_bank():
    return synthetic_bank(curve, actions=ACTIONS, noise_sd=0.3, k=40,
                          seed=7, label="synth")


@pytest.fixture(scope="module")
def bank():
    return make_bank()


@pytest.fixture(scope="module")
def crash_campaign(bank):
    """One campaign under the canned crash schedule, run once per module."""
    canned = canned_schedules(8, ITERATIONS)
    return run_campaign(
        bank,
        schedules={"crash": canned["crash"]},
        strategies=("GP-discontinuous", "Resilient(GP-discontinuous)"),
        iterations=ITERATIONS,
        reps=3,
    )


class TestAcceptance:
    def test_resilient_gp_beats_raw_under_crash(self, crash_campaign):
        raw = crash_campaign.row("crash", "GP-discontinuous")
        wrapped = crash_campaign.row("crash", "Resilient(GP-discontinuous)")
        assert wrapped.mean_regret < raw.mean_regret, (
            f"resilient regret {wrapped.mean_regret:.2f} must beat raw "
            f"{raw.mean_regret:.2f}"
        )

    def test_resilient_never_proposes_crashed_nodes(self, crash_campaign):
        # The raw strategy keeps proposing the crashed optimum and pays
        # the degraded penalty; the wrapper contracts its space instead.
        raw = crash_campaign.row("crash", "GP-discontinuous")
        wrapped = crash_campaign.row("crash", "Resilient(GP-discontinuous)")
        assert raw.degraded_frac > 0.0
        assert wrapped.degraded_frac == 0.0

    def test_improvements_reports_the_pair(self, crash_campaign):
        imps = crash_campaign.improvements()
        assert len(imps) == 1
        imp = imps[0]
        assert imp["schedule"] == "crash"
        assert imp["strategy"] == "GP-discontinuous"
        assert imp["improved"] is True
        assert imp["resilient_regret"] < imp["raw_regret"]


class TestDeterminism:
    def test_worker_count_does_not_change_the_result(self, bank):
        canned = canned_schedules(8, 20)
        kwargs = dict(
            schedules={"crash": canned["crash"]},
            strategies=("UCB", "Resilient(UCB)"),
            iterations=20,
            reps=2,
        )
        serial = run_campaign(bank, **kwargs)
        pooled = run_campaign(bank, workers=2, **kwargs)
        assert serial == pooled

    def test_fingerprints_recorded_per_schedule(self, crash_campaign):
        canned = canned_schedules(8, ITERATIONS)
        assert crash_campaign.fingerprints == {
            "crash": canned["crash"].fingerprint()
        }


class TestRegretAccounting:
    def test_oracle_play_has_zero_regret(self):
        canned = canned_schedules(8, 20)
        injector = FaultInjector(canned["crash"], ACTIONS, 20)
        means = {n: curve(n) for n in ACTIONS}
        oracle_actions = [
            injector.oracle_duration(t, means)[0] for t in range(20)
        ]
        assert cumulative_fault_regret(
            injector, oracle_actions, means
        ) == pytest.approx(0.0, abs=1e-12)

    def test_any_other_play_has_positive_regret(self):
        canned = canned_schedules(8, 20)
        injector = FaultInjector(canned["crash"], ACTIONS, 20)
        means = {n: curve(n) for n in ACTIONS}
        assert cumulative_fault_regret(injector, [1] * 20, means) > 0.0


class TestReporting:
    def test_campaign_strategies_interleaves_wrappers(self):
        assert campaign_strategies(("DC", "UCB")) == [
            "DC", "Resilient(DC)", "UCB", "Resilient(UCB)",
        ]

    def test_metrics_keys_follow_ledger_convention(self, crash_campaign):
        metrics = campaign_metrics(crash_campaign)
        for prefix in ("regret", "total", "degraded"):
            assert f"{prefix}.crash.GP-discontinuous" in metrics
            assert f"{prefix}.crash.Resilient(GP-discontinuous)" in metrics
        assert all(isinstance(v, float) for v in metrics.values())

    def test_table_renders_every_row(self, crash_campaign):
        table = campaign_table(crash_campaign)
        assert "crash" in table
        assert "Resilient(GP-discontinuous)" in table

    def test_report_artifact_contents(self, crash_campaign, tmp_path):
        out = tmp_path / "BENCH_faults.json"
        path = write_campaign_report(crash_campaign, path=out)
        payload = json.loads(path.read_text())
        assert payload["label"] == "faults-campaign synth"
        assert payload["config"]["iterations"] == ITERATIONS
        assert payload["config"]["reps"] == 3
        assert set(payload["config"]["schedules"]) == {"crash"}
        assert payload["metrics"] == campaign_metrics(crash_campaign)
        assert payload["improvements"] == crash_campaign.improvements()

    def test_row_lookup_raises_on_unknown(self, crash_campaign):
        with pytest.raises(KeyError):
            crash_campaign.row("crash", "Nope")

    def test_row_resilient_flag(self):
        raw = CampaignRow("crash", "UCB", 1.0, 1.0, 0.0)
        wrapped = CampaignRow("crash", "Resilient(UCB)", 1.0, 1.0, 0.0)
        assert not raw.resilient
        assert wrapped.resilient
