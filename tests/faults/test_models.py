"""Tests for the declarative fault models and schedules."""

import json

import pytest

from repro.faults import (
    FAULT_KINDS,
    FAULT_SCHEMA_VERSION,
    FaultSchedule,
    InterferenceBurst,
    NetworkDegradation,
    NodeCrash,
    NodeSlowdown,
    STATIONARY,
    canned_schedules,
    fault_from_dict,
    fault_to_dict,
)


class TestFaultModels:
    def test_kinds_registry(self):
        assert set(FAULT_KINDS) == {
            "slowdown", "crash", "interference", "network"
        }

    def test_windows(self):
        f = NodeSlowdown(node=3, gflops_factor=0.5, start=5, end=10)
        assert not f.active(4)
        assert f.active(5) and f.active(9)
        assert not f.active(10)

    def test_open_window_runs_forever(self):
        f = NodeCrash(node=2, start=7)
        assert not f.active(6)
        assert f.active(7) and f.active(10**6)

    def test_window_validation(self):
        with pytest.raises(ValueError):
            NodeCrash(node=1, start=-1)
        with pytest.raises(ValueError):
            NodeCrash(node=1, start=5, end=5)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            NodeSlowdown(node=0, gflops_factor=0.5)
        with pytest.raises(ValueError):
            NodeSlowdown(node=1, gflops_factor=0.0)
        with pytest.raises(ValueError):
            NodeSlowdown(node=1, gflops_factor=1.5)
        with pytest.raises(ValueError):
            NodeCrash(node=1, penalty=0.9)
        with pytest.raises(ValueError):
            InterferenceBurst(magnitude_s=-1.0)
        with pytest.raises(ValueError):
            InterferenceBurst(magnitude_s=1.0, jitter=1.5)
        with pytest.raises(ValueError):
            NetworkDegradation(bandwidth_factor=0.0)
        with pytest.raises(ValueError):
            NetworkDegradation(bandwidth_factor=0.5, comm_share=2.0)

    @pytest.mark.parametrize("fault", [
        NodeSlowdown(node=3, gflops_factor=0.5, start=5, end=10),
        NodeCrash(node=2, start=7, penalty=2.0),
        InterferenceBurst(magnitude_s=1.5, start=1, end=9, jitter=0.3),
        NetworkDegradation(bandwidth_factor=0.4, start=0, comm_share=0.2),
    ])
    def test_dict_round_trip(self, fault):
        assert fault_from_dict(fault_to_dict(fault)) == fault

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            fault_from_dict({"kind": "meteor", "node": 1})
        with pytest.raises(TypeError):
            fault_to_dict("not a fault")


class TestFaultSchedule:
    def schedule(self):
        return FaultSchedule(
            label="mix",
            faults=(
                NodeCrash(node=8, start=10),
                NodeCrash(node=7, start=10, end=20),
                NodeSlowdown(node=4, gflops_factor=0.5, start=5, end=15),
                InterferenceBurst(magnitude_s=1.0, jitter=0.2),
            ),
            seed=42,
        )

    def test_stationary_is_empty(self):
        assert STATIONARY.empty
        assert len(STATIONARY) == 0

    def test_of_kind_preserves_order(self):
        s = self.schedule()
        assert [f.node for f in s.of_kind("crash")] == [8, 7]
        assert len(s.of_kind("interference")) == 1

    def test_crashed_nodes_sorted_distinct(self):
        s = self.schedule()
        assert s.crashed_nodes(5) == ()
        assert s.crashed_nodes(12) == (7, 8)
        assert s.crashed_nodes(25) == (8,)   # node 7 came back
        assert s.max_concurrent_crashes(30) == 2

    def test_json_round_trip(self):
        s = self.schedule()
        clone = FaultSchedule.from_json(s.to_json())
        assert clone == s
        assert json.loads(s.to_json())["schema"] == FAULT_SCHEMA_VERSION

    def test_wrong_schema_rejected(self):
        blob = json.dumps({"schema": 999, "label": "x", "faults": []})
        with pytest.raises(ValueError):
            FaultSchedule.from_json(blob)

    def test_non_fault_member_rejected(self):
        with pytest.raises(TypeError):
            FaultSchedule(label="bad", faults=("oops",))

    def test_fingerprint_tracks_content(self):
        s = self.schedule()
        assert s.fingerprint() == self.schedule().fingerprint()
        reseeded = FaultSchedule(label=s.label, faults=s.faults, seed=43)
        assert reseeded.fingerprint() != s.fingerprint()
        assert STATIONARY.fingerprint() != s.fingerprint()

    def test_validate_for(self):
        s = self.schedule()
        s.validate_for(8, lo=1)
        with pytest.raises(ValueError):
            s.validate_for(6)        # faults name nodes 7 and 8
        with pytest.raises(ValueError):
            s.validate_for(8, lo=7)  # two crashes leave fewer than 7

    def test_describe_mentions_every_fault(self):
        text = self.schedule().describe()
        for word in ("crash", "slowdown", "interference", "mix"):
            assert word in text


class TestCannedSchedules:
    def test_names_and_feasibility(self):
        canned = canned_schedules(8, 60, seed=3)
        assert set(canned) == {
            "straggler", "crash", "interference", "netdeg", "compound"
        }
        for schedule in canned.values():
            schedule.validate_for(8, lo=1)
            assert schedule.seed == 3

    def test_crash_takes_top_quarter(self):
        canned = canned_schedules(8, 60)
        crash = canned["crash"]
        assert {f.node for f in crash.of_kind("crash")} == {7, 8}
        assert crash.crashed_nodes(59) == (7, 8)
        assert crash.crashed_nodes(0) == ()

    def test_too_small_inputs_rejected(self):
        with pytest.raises(ValueError):
            canned_schedules(1, 60)
        with pytest.raises(ValueError):
            canned_schedules(8, 5)

    def test_deterministic_fingerprints(self):
        a = canned_schedules(8, 60, seed=1)
        b = canned_schedules(8, 60, seed=1)
        for key in a:
            assert a[key].fingerprint() == b[key].fingerprint()
