"""Shared fixtures for strategy tests: synthetic environments."""

import numpy as np
import pytest

from repro.strategies import ActionSpace


def run_env(strategy, f, iterations, noise_sd=0.0, seed=0):
    """Drive a strategy against a synthetic duration function."""
    rng = np.random.default_rng(seed)
    for _ in range(iterations):
        n = strategy.propose()
        y = f(n) + (rng.normal(0.0, noise_sd) if noise_sd else 0.0)
        strategy.observe(n, max(y, 0.0))
    return strategy


def convex(n):
    """Smooth convex curve with minimum at n = 6."""
    return 10.0 + 20.0 / n + 0.8 * n - 9.0  # min near sqrt(20/0.8) = 5


def stepped(n):
    """Convex-ish curve with a discontinuity when the S group joins at 9."""
    base = 5.0 + 40.0 / n + 0.3 * n
    return base + (6.0 if n > 8 else 0.0)


@pytest.fixture
def space14():
    """2L-6M-6S-like space: 14 nodes, boundaries (2, 8, 14)."""
    return ActionSpace(
        actions=tuple(range(2, 15)),
        n_total=14,
        group_boundaries=(2, 8, 14),
    )


@pytest.fixture
def space14_lp():
    """Same space with an LP bound: optimistic 1/x floor."""
    lp = lambda n: 1.0 + 60.0 / n

    return ActionSpace(
        actions=tuple(range(2, 15)),
        n_total=14,
        group_boundaries=(2, 8, 14),
        lp_bound=lp,
    )
