"""Tests for GP-UCB and GP-discontinuous."""

import numpy as np
import pytest

from repro.strategies import (
    GPDiscontinuousStrategy,
    GPUCBStrategy,
    beta_t,
    make_strategy,
    strategy_names,
)

from .conftest import convex, run_env, stepped


class TestBetaSchedule:
    def test_grows_with_t(self):
        assert beta_t(10, 13) > beta_t(1, 13)

    def test_grows_with_actions(self):
        assert beta_t(5, 100) > beta_t(5, 5)

    def test_validation(self):
        with pytest.raises(ValueError):
            beta_t(0, 5)


class TestGPUCB:
    def test_initialization_sequence(self, space14):
        s = GPUCBStrategy(space14)
        picks = []
        for _ in range(4):
            n = s.propose()
            picks.append(n)
            s.observe(n, convex(n))
        # N, left-most, middle twice (middle of 2..14 is 8).
        assert picks == [14, 2, 8, 8]

    def test_finds_optimum_on_smooth_curve(self, space14):
        s = run_env(GPUCBStrategy(space14), convex, 40, noise_sd=0.2, seed=0)
        most = max(space14.actions, key=s.times_selected)
        assert abs(most - 5) <= 1

    def test_does_not_need_full_exploration(self, space14):
        s = run_env(GPUCBStrategy(space14), convex, 40, noise_sd=0.2, seed=0)
        # Clearly-bad actions are skipped entirely (paper, Figure 4A).
        assert len(set(s.xs)) < len(space14)

    def test_surrogate_predicts_curve(self, space14):
        s = run_env(GPUCBStrategy(space14), convex, 30, noise_sd=0.1, seed=1)
        grid = np.asarray(space14.actions, dtype=float)
        mean, sd = s.surrogate(grid)
        truth = np.array([convex(n) for n in space14.actions])
        # Mean within ~2 sd of truth on most of the grid.
        close = np.abs(mean - truth) <= 2.5 * sd + 0.5
        assert close.mean() > 0.7

    def test_proposals_in_space(self, space14):
        s = GPUCBStrategy(space14)
        for _ in range(15):
            n = s.propose()
            assert n in space14.actions
            s.observe(n, convex(n))


class TestGPDiscontinuous:
    def test_requires_lp_bound(self, space14):
        with pytest.raises(ValueError, match="lp_bound"):
            GPDiscontinuousStrategy(space14)

    def test_first_action_all_nodes(self, space14_lp):
        assert GPDiscontinuousStrategy(space14_lp).propose() == 14

    def test_bound_mechanism_prunes_left(self, space14_lp):
        s = GPDiscontinuousStrategy(space14_lp)
        s.observe(14, 12.0)  # f(N) = 12 -> LP(n) = 1 + 60/n < 12 <=> n > 5.45
        assert s.bound_left_point() == 6
        allowed = s._allowed_actions()
        assert allowed.min() == 6

    def test_design_includes_group_boundaries(self, space14_lp):
        s = GPDiscontinuousStrategy(space14_lp)
        picks = []
        for _ in range(6):
            n = s.propose()
            picks.append(n)
            s.observe(n, stepped(n))
        # After N: n_l, mid, mid, then boundary 8 (boundary 2 pruned).
        assert picks[0] == 14
        nl = s.bound_left_point()
        assert picks[1] == nl
        assert picks[2] == picks[3]  # replicated middle
        assert 8 in picks  # group boundary measured

    def test_finds_optimum_on_stepped_curve(self, space14_lp):
        s = run_env(GPDiscontinuousStrategy(space14_lp), stepped, 50,
                    noise_sd=0.2, seed=0)
        # stepped's optimum over the allowed region is n=8.
        most = max(set(s.xs), key=s.times_selected)
        assert abs(most - 8) <= 1

    def test_never_plays_pruned_actions(self, space14_lp):
        s = run_env(GPDiscontinuousStrategy(space14_lp), stepped, 40,
                    noise_sd=0.2, seed=1)
        nl = s.bound_left_point()
        assert all(x >= nl for x in s.xs[1:])

    def test_surrogate_includes_lp_baseline(self, space14_lp):
        s = run_env(GPDiscontinuousStrategy(space14_lp), stepped, 25,
                    noise_sd=0.1, seed=2)
        grid = s._allowed_actions()
        mean, _ = s.surrogate(grid)
        lp = np.array([space14_lp.lp_bound(int(n)) for n in grid])
        # Predicted durations sit above the LP lower bound on average.
        assert (mean - lp).mean() > 0

    def test_handles_single_group_cluster(self):
        """Homogeneous clusters (scenario m) use a plain linear trend."""
        from repro.strategies import ActionSpace

        space = ActionSpace(
            actions=tuple(range(4, 17)), n_total=16,
            group_boundaries=(16,), lp_bound=lambda n: 32.0 / n,
        )
        s = run_env(GPDiscontinuousStrategy(space), lambda n: 32.0 / n + 0.4 * n,
                    30, noise_sd=0.1, seed=3)
        most = max(set(s.xs), key=s.times_selected)
        assert abs(most - 9) <= 2  # optimum of 32/n + .4n is ~8.9


class TestRegistry:
    def test_seven_strategies(self):
        assert len(strategy_names()) == 7

    def test_make_all(self, space14_lp):
        for name in strategy_names():
            s = make_strategy(name, space14_lp, seed=1)
            assert s.name == name
            n = s.propose()
            assert n in space14_lp.actions

    def test_unknown_name(self, space14_lp):
        with pytest.raises(ValueError):
            make_strategy("SGD", space14_lp)
