"""Tests for the GP-EI acquisition variant."""

import numpy as np
import pytest

from repro.strategies import GPEIStrategy

from .conftest import convex, run_env, stepped


class TestGPEI:
    def test_name_and_inheritance(self, space14_lp):
        s = GPEIStrategy(space14_lp)
        assert s.name == "GP-EI"
        assert s.propose() == 14  # same initialization as GP-discontinuous

    def test_finds_optimum_on_smooth_curve(self, space14_lp):
        s = run_env(GPEIStrategy(space14_lp, epsilon=0.0), convex, 50,
                    noise_sd=0.2, seed=0)
        most = max(set(s.xs), key=s.times_selected)
        # convex optimum is 5; LP pruning may clip it -- allow the best
        # allowed action instead.
        allowed = [int(a) for a in s._allowed_actions()]
        best_allowed = min(allowed, key=convex)
        assert abs(most - best_allowed) <= 1

    def test_epsilon_exploration(self, space14_lp):
        s = run_env(GPEIStrategy(space14_lp, epsilon=0.5), stepped, 60,
                    noise_sd=0.2, seed=1)
        # With heavy epsilon, many distinct actions get tried.
        assert len(set(s.xs)) >= 6

    def test_pure_ei_can_commit_early(self, space14_lp):
        """epsilon=0 EI exploits aggressively: fewer distinct actions than
        with forced exploration (the paper's argument for UCB)."""
        s_greedy = run_env(GPEIStrategy(space14_lp, epsilon=0.0), stepped, 60,
                           noise_sd=0.2, seed=2)
        s_eps = run_env(GPEIStrategy(space14_lp, epsilon=0.4), stepped, 60,
                        noise_sd=0.2, seed=2)
        assert len(set(s_greedy.xs)) <= len(set(s_eps.xs))

    def test_proposals_in_space(self, space14_lp):
        s = GPEIStrategy(space14_lp, seed=3)
        rng = np.random.default_rng(0)
        for _ in range(30):
            n = s.propose()
            assert n in space14_lp.actions
            s.observe(n, stepped(n) + rng.normal(0, 0.2))
