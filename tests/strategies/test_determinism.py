"""Determinism smoke test over the whole strategy registry.

Every registered strategy, driven twice with the same seed against the
same (seeded-noise) synthetic environment, must produce bit-identical
action sequences — the property the paper's 30-rep experiments and the
DET001 analysis rule both rest on.
"""

import numpy as np
import pytest

from repro.strategies import ActionSpace, make_strategy, registered_names

from .conftest import stepped


@pytest.fixture
def space():
    return ActionSpace(
        actions=tuple(range(2, 15)),
        n_total=14,
        group_boundaries=(2, 8, 14),
        lp_bound=lambda n: 1.0 + 60.0 / n,
    )


def drive(name, space, seed, rounds=10):
    """Run ``rounds`` propose/observe cycles; return the action sequence."""
    strategy = make_strategy(name, space, seed=seed)
    noise = np.random.default_rng(seed + 1000)
    actions = []
    for _ in range(rounds):
        n = strategy.propose()
        actions.append(n)
        y = stepped(n) + noise.normal(0.0, 0.3)
        strategy.observe(n, max(y, 0.0))
    return actions


class TestRegistryDeterminism:
    def test_registry_covers_extensions(self):
        names = registered_names()
        assert {"All-nodes", "SANN", "StochasticApprox", "GP-EI",
                "GP-discontinuous-windowed"} <= set(names)
        assert {"DC", "Right-Left", "Brent", "UCB", "UCB-struct",
                "GP-UCB", "GP-discontinuous"} <= set(names)

    def test_registry_covers_resilient_wrappers(self):
        from repro.strategies.registry import RESILIENT_WRAPPED

        names = set(registered_names())
        assert RESILIENT_WRAPPED == ("DC", "Right-Left", "Brent", "UCB",
                                     "UCB-struct", "GP-UCB",
                                     "GP-discontinuous")
        for inner in RESILIENT_WRAPPED:
            assert f"Resilient({inner})" in names

    @pytest.mark.parametrize("name", registered_names())
    def test_same_seed_same_actions(self, name, space):
        first = drive(name, space, seed=3)
        second = drive(name, space, seed=3)
        assert first == second, f"{name} is not run-to-run deterministic"

    @pytest.mark.parametrize("name", ["SANN", "GP-UCB", "UCB"])
    def test_actions_stay_in_space(self, name, space):
        for n in drive(name, space, seed=7, rounds=15):
            assert n in space.actions
