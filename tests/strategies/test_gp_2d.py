"""Tests for the 2-D (generation x factorization) GP strategy."""

import numpy as np
import pytest

from repro.strategies import GP2DStrategy


def duration_2d(n_gen, n_fact):
    """Synthetic 2-D landscape: optimum at roughly (10, 8) of 23 nodes.

    Mirrors the paper's Figure 8 finding: all-nodes generation is not
    always best.
    """
    gen_cost = 30.0 / n_gen + 0.25 * n_gen
    fact_cost = 60.0 / n_fact + 0.6 * n_fact
    return 2.0 + max(gen_cost, fact_cost) + 0.08 * (n_gen + n_fact)


def lp_2d(n_gen, n_fact):
    return max(30.0 / n_gen, 60.0 / n_fact)


@pytest.fixture
def pairs():
    counts = list(range(2, 24, 3)) + [23]
    return [(g, f) for g in counts for f in counts]


def run(strategy, iterations, noise_sd=0.2, seed=0):
    rng = np.random.default_rng(seed)
    for _ in range(iterations):
        pair = strategy.propose()
        y = duration_2d(*pair) + rng.normal(0, noise_sd)
        strategy.observe(pair, max(y, 0.0))
    return strategy


class TestGP2DStrategy:
    def test_requires_all_nodes_pair(self):
        with pytest.raises(ValueError):
            GP2DStrategy(pairs=[(2, 2)], n_total=23)

    def test_first_action_is_all_nodes(self, pairs):
        s = GP2DStrategy(pairs=pairs, n_total=23, lp_bound=lp_2d)
        assert s.propose() == (23, 23)

    def test_lp_prunes_pairs(self, pairs):
        s = GP2DStrategy(pairs=pairs, n_total=23, lp_bound=lp_2d)
        s.observe((23, 23), duration_2d(23, 23))
        allowed = s.allowed_pairs()
        assert len(allowed) < len(pairs)
        assert (23, 23) in allowed
        # Every non-baseline allowed pair can theoretically win.
        f_n = s.mean_duration((23, 23))
        assert all(lp_2d(*p) < f_n for p in allowed if p != (23, 23))

    def test_finds_better_than_all_nodes(self, pairs):
        s = run(GP2DStrategy(pairs=pairs, n_total=23, lp_bound=lp_2d), 60)
        best = s.best_observed()
        assert duration_2d(*best) < duration_2d(23, 23)

    def test_converges_near_2d_optimum(self, pairs):
        s = run(GP2DStrategy(pairs=pairs, n_total=23, lp_bound=lp_2d), 80, seed=1)
        # Most-selected pair close to the sampled-grid optimum.
        grid_best = min(pairs, key=lambda p: duration_2d(*p))
        most = max(s._stats, key=lambda p: len(s._stats[p]))
        assert duration_2d(*most) <= duration_2d(*grid_best) * 1.15

    def test_observe_validation(self, pairs):
        s = GP2DStrategy(pairs=pairs, n_total=23)
        with pytest.raises(ValueError):
            s.observe((23, 23), -1.0)

    def test_works_without_lp(self, pairs):
        s = run(GP2DStrategy(pairs=pairs, n_total=23), 40)
        assert s.iteration == 40


class TestRun2D:
    def test_application_loop(self):
        from repro import ExaGeoStat, Workload, get_scenario
        from repro.distribution import LPBoundCalculator

        scenario = get_scenario("b")
        cluster = scenario.build_cluster()
        workload = Workload(name="101", t=10, nb=64)
        app = ExaGeoStat(cluster, workload)
        lp = LPBoundCalculator(cluster, workload)
        counts = [2, 6, 10, 14]
        pairs = [(g, f) for g in counts for f in counts]
        s = GP2DStrategy(
            pairs=pairs, n_total=14,
            lp_bound=lambda g, f: max(lp.generation(g), lp.fact(f)),
        )
        result = app.run2d(s, iterations=12)
        assert len(result.records) == 12
        assert all(r.n_gen in counts and r.n_fact in counts for r in result.records)
