"""Tests for the naive heuristics (DC and Right-Left)."""

import pytest

from repro.strategies import DichotomyStrategy, RightLeftStrategy

from .conftest import convex, run_env, stepped


class TestDichotomy:
    def test_finds_min_of_smooth_convex(self, space14):
        s = run_env(DichotomyStrategy(space14), convex, 30)
        # True minimum of `convex` over 2..14 is n=5.
        assert s.propose() in (4, 5, 6)

    def test_converges_then_exploits(self, space14):
        s = run_env(DichotomyStrategy(space14), convex, 30)
        final = [s.propose() for _ in range(3)]
        assert len(set(final)) == 1  # settled

    def test_few_measurements_needed(self, space14):
        """Binary search visits O(log |A|) distinct points."""
        s = run_env(DichotomyStrategy(space14), convex, 30)
        assert len(set(s.xs)) <= 10

    def test_noise_can_mislead(self, space14):
        """With huge noise, different seeds settle on different answers --
        the non-resilience Table I documents."""
        finals = set()
        for seed in range(8):
            s = run_env(
                DichotomyStrategy(space14), convex, 30, noise_sd=8.0, seed=seed
            )
            finals.add(s.propose())
        assert len(finals) > 1


class TestRightLeft:
    def test_starts_at_all_nodes(self, space14):
        s = RightLeftStrategy(space14)
        assert s.propose() == 14

    def test_walks_left_while_improving(self, space14):
        # Monotonically increasing in n: keeps walking to the left edge.
        s = run_env(RightLeftStrategy(space14), lambda n: float(n), 20)
        assert s.propose() == 2

    def test_stops_at_first_non_improvement(self, space14):
        s = run_env(RightLeftStrategy(space14), convex, 25)
        # convex dips until 5 then walking further left increases time:
        # stops at 5 (the point before the first worse measurement).
        assert s.propose() == 5

    def test_never_explores_past_local_minimum(self, space14):
        """On the stepped curve the big drop below n=9 is unreachable if a
        local minimum at the right stops the walk (paper's (p) argument).
        The walk 14,13,12,... hits increasing durations at 12->11? No:
        stepped decreases to 10 then rises at 9? Verify it never reaches
        the global optimum region when a local bump intervenes."""
        bumpy = lambda n: {14: 10.0, 13: 9.8, 12: 10.5}.get(n, 5.0)
        s = run_env(RightLeftStrategy(space14), bumpy, 10)
        assert s.propose() == 13  # stuck right of the bump

    def test_exploits_after_settling(self, space14):
        s = run_env(RightLeftStrategy(space14), convex, 25)
        assert len({s.propose() for _ in range(5)}) == 1


class TestSteppedCurveBehaviour:
    def test_dc_can_handle_step(self, space14):
        """On `stepped` the optimum is n=8 (just before the S group)."""
        s = run_env(DichotomyStrategy(space14), stepped, 30)
        # DC may or may not land exactly on 8, but must end in the cheap
        # region (<= 8).
        assert s.propose() <= 8
