"""Tests for the non-stationary (sliding window) extension."""

import numpy as np
import pytest

from repro.measure import DriftingBank, synthetic_bank
from repro.strategies import (
    GPDiscontinuousStrategy,
    WindowedGPDiscontinuousStrategy,
)


def make_regimes():
    """Before: optimum at n=4 (comm cheap).  After: network degradation
    makes many nodes costly, optimum moves to n=9."""
    before = synthetic_bank(
        f=lambda n: 6.0 + 40.0 / n + 1.2 * abs(n - 4),
        actions=range(2, 15),
        lp=lambda n: 40.0 / n,
        group_boundaries=(2, 8, 14),
        noise_sd=0.25,
        seed=0,
        label="before",
    )
    after = synthetic_bank(
        f=lambda n: 9.0 + 40.0 / n + 1.2 * abs(n - 9),
        actions=range(2, 15),
        lp=lambda n: 40.0 / n,
        group_boundaries=(2, 8, 14),
        noise_sd=0.25,
        seed=1,
        label="after",
    )
    return before, after


def run_on(bank, strategy, iterations, seed=0):
    rng = np.random.default_rng(seed)
    chosen = []
    for _ in range(iterations):
        n = strategy.propose()
        strategy.observe(n, bank.resample(n, rng))
        chosen.append(n)
    return chosen


class TestDriftingBank:
    def test_switches_regime(self):
        before, after = make_regimes()
        drift = DriftingBank(before, after, switch_at=3)
        rng = np.random.default_rng(0)
        assert drift.current() is before
        for _ in range(3):
            drift.resample(5, rng)
        assert drift.current() is after

    def test_reset(self):
        before, after = make_regimes()
        drift = DriftingBank(before, after, switch_at=1)
        rng = np.random.default_rng(0)
        drift.resample(5, rng)
        assert drift.current() is after
        drift.reset()
        assert drift.current() is before

    def test_best_action_is_final_regime(self):
        before, after = make_regimes()
        drift = DriftingBank(before, after, switch_at=10)
        assert drift.best_action() == after.best_action()

    def test_validation(self):
        before, after = make_regimes()
        with pytest.raises(ValueError):
            DriftingBank(before, after, switch_at=-1)
        other = synthetic_bank(
            f=lambda n: 1.0, actions=range(3, 15), lp=lambda n: 0.5,
        )
        with pytest.raises(ValueError):
            DriftingBank(before, other, switch_at=5)


class TestWindowedStrategy:
    def test_validation(self):
        before, _ = make_regimes()
        with pytest.raises(ValueError):
            WindowedGPDiscontinuousStrategy(before.action_space(), window=2)

    def test_stationary_behaviour_matches_base(self):
        """Without drift, windowing should not hurt convergence."""
        before, _ = make_regimes()
        s = WindowedGPDiscontinuousStrategy(before.action_space(), window=40)
        chosen = run_on(before, s, 60, seed=3)
        late = chosen[-10:]
        assert np.mean([abs(c - before.best_action()) for c in late]) <= 3

    def test_readapts_after_drift(self):
        """After the regime switch the windowed variant tracks the new
        optimum; the frozen variant keeps exploiting the stale one."""
        before, after = make_regimes()
        old_best, new_best = before.best_action(), after.best_action()
        assert old_best != new_best

        results = {}
        for cls, label in (
            (GPDiscontinuousStrategy, "frozen"),
            (WindowedGPDiscontinuousStrategy, "windowed"),
        ):
            drift = DriftingBank(before, after, switch_at=60)
            strategy = cls(before.action_space(), seed=5)
            chosen = run_on(drift, strategy, 160, seed=5)
            results[label] = chosen

        def late_error(chosen):
            return np.mean([abs(c - new_best) for c in chosen[-20:]])

        assert late_error(results["windowed"]) <= late_error(results["frozen"]) + 0.5
        assert late_error(results["windowed"]) <= 3.0

    def test_drift_resets_bound(self):
        before, after = make_regimes()
        space = before.action_space()
        s = WindowedGPDiscontinuousStrategy(space, window=20, drift_threshold=0.1)
        # Feed a stable regime for the all-nodes action, then a shifted one.
        for _ in range(4):
            s.observe(14, 20.0)
        nl_before = s.bound_left_point()
        for _ in range(20):
            s.observe(14, 45.0)
        assert s._bound_left is None or s._bound_left != nl_before or True
        # After reset, the recomputed bound uses the recent (higher) f(N):
        # more actions become admissible.
        nl_after = s.bound_left_point()
        assert nl_after <= nl_before
