"""Tests for the UCB bandit strategies."""

import pytest

from repro.strategies import UCBStrategy, UCBStructStrategy

from .conftest import convex, run_env


class TestUCB:
    def test_initial_sweep_covers_all_arms(self, space14):
        s = UCBStrategy(space14)
        seen = []
        for _ in range(len(space14)):
            n = s.propose()
            seen.append(n)
            s.observe(n, convex(n))
        assert sorted(seen) == list(space14.actions)

    def test_sweep_starts_from_all_nodes(self, space14):
        assert UCBStrategy(space14).propose() == 14

    def test_exploits_best_arm_eventually(self, space14):
        s = run_env(UCBStrategy(space14), convex, 200, noise_sd=0.3, seed=1)
        best = 5  # argmin of convex on 2..14
        picks = [s.propose() for _ in range(1)]
        # The most-selected arm should be at/near the optimum.
        most = max(space14.actions, key=s.times_selected)
        assert abs(most - best) <= 1
        assert all(p in space14.actions for p in picks)

    def test_keeps_occasional_exploration(self, space14):
        s = run_env(UCBStrategy(space14), convex, 300, noise_sd=0.3, seed=2)
        # every arm selected at least once, several more than once
        assert all(s.times_selected(a) >= 1 for a in space14.actions)

    def test_full_exploration_is_costly(self, space14):
        """The sweep forces |A| measurements -- the paper's criticism."""
        s = UCBStrategy(space14)
        for _ in range(len(space14)):
            n = s.propose()
            s.observe(n, convex(n))
        assert len(set(s.xs)) == len(space14)


class TestUCBStruct:
    def test_arms_are_group_boundaries(self, space14):
        s = UCBStructStrategy(space14)
        seen = set()
        for _ in range(12):
            n = s.propose()
            seen.add(n)
            s.observe(n, convex(n))
        assert seen <= {2, 8, 14}

    def test_cannot_reach_interior_optimum(self, space14):
        """convex has its optimum at 5, which is not a boundary: UCB-struct
        can never play it (Section IV-C)."""
        s = run_env(UCBStructStrategy(space14), convex, 100, noise_sd=0.2)
        assert 5 not in set(s.xs)

    def test_picks_best_boundary(self, space14):
        s = run_env(UCBStructStrategy(space14), convex, 150, noise_sd=0.2, seed=3)
        # Among {2, 8, 14}: convex(2)=12.6, convex(8)=9.9, convex(14)=13.6.
        most = max({2, 8, 14}, key=s.times_selected)
        assert most == 8

    def test_boundaries_outside_action_range_dropped(self):
        from repro.strategies import ActionSpace

        space = ActionSpace(
            actions=tuple(range(6, 15)), n_total=14, group_boundaries=(2, 8, 14)
        )
        s = UCBStructStrategy(space)
        seen = set()
        for _ in range(6):
            n = s.propose()
            seen.add(n)
            s.observe(n, 1.0)
        assert seen <= {8, 14}
