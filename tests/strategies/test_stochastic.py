"""Tests for the discarded stochastic baselines (SANN, SPSA/KW)."""

import numpy as np
import pytest

from repro.strategies import (
    GPDiscontinuousStrategy,
    SimulatedAnnealingStrategy,
    StochasticApproximationStrategy,
)

from .conftest import convex, run_env


class TestSimulatedAnnealing:
    def test_starts_from_all_nodes(self, space14):
        assert SimulatedAnnealingStrategy(space14).propose() == 14

    def test_proposals_stay_in_space(self, space14):
        s = run_env(SimulatedAnnealingStrategy(space14), convex, 60,
                    noise_sd=0.3, seed=0)
        assert all(x in space14.actions for x in s.xs)

    def test_exploits_after_annealing(self, space14):
        s = run_env(
            SimulatedAnnealingStrategy(space14, anneal_iterations=30),
            convex, 40, noise_sd=0.2, seed=1,
        )
        finals = {s.propose() for _ in range(4)}
        assert len(finals) == 1

    def test_finds_decent_region_eventually(self, space14):
        s = run_env(
            SimulatedAnnealingStrategy(space14, anneal_iterations=50),
            convex, 60, noise_sd=0.1, seed=2,
        )
        # best observed should be within the convex basin.
        assert convex(s.best_observed()) <= convex(14)

    def test_validation(self, space14):
        with pytest.raises(ValueError):
            SimulatedAnnealingStrategy(space14, cooling=1.5)
        with pytest.raises(ValueError):
            SimulatedAnnealingStrategy(space14, step_span=0)


class TestStochasticApproximation:
    def test_paired_probes(self, space14):
        s = StochasticApproximationStrategy(space14)
        n1 = s.propose()
        s.observe(n1, convex(n1))
        n2 = s.propose()
        s.observe(n2, convex(n2))
        # The two probes straddle the current point.
        assert n1 != n2 or n1 in (space14.lo, space14.n_total)

    def test_descends_on_smooth_convex(self, space14):
        s = run_env(StochasticApproximationStrategy(space14), convex, 80,
                    noise_sd=0.05, seed=3)
        # Current point moved off the right boundary toward the optimum.
        assert s._x < 13.0

    def test_proposals_stay_in_space(self, space14):
        s = run_env(StochasticApproximationStrategy(space14), convex, 50,
                    noise_sd=0.5, seed=4)
        assert all(x in space14.actions for x in s.xs)

    def test_exploits_after_budget(self, space14):
        s = run_env(
            StochasticApproximationStrategy(space14, sa_iterations=20),
            convex, 30, noise_sd=0.2, seed=5,
        )
        assert len({s.propose() for _ in range(4)}) == 1


class TestNotParsimonious:
    def test_gp_disc_beats_both_on_budget(self, space14_lp):
        """The paper's reason for discarding them: on a ~127-iteration
        budget their cumulative time is worse than GP-discontinuous."""
        rng_noise = 0.3

        def total(strategy, seed):
            s = run_env(strategy, convex, 127, noise_sd=rng_noise, seed=seed)
            return sum(s.ys)

        gp = np.mean([
            total(GPDiscontinuousStrategy(space14_lp, seed=i), i) for i in range(4)
        ])
        sann = np.mean([
            total(SimulatedAnnealingStrategy(space14_lp, seed=i), i) for i in range(4)
        ])
        spsa = np.mean([
            total(StochasticApproximationStrategy(space14_lp, seed=i), i)
            for i in range(4)
        ])
        assert gp < sann
        assert gp < spsa
