"""Tests for the strategy base classes and action space."""

import pytest

from repro.strategies import ActionSpace, AllNodesStrategy, OracleStrategy

from .conftest import run_env


class TestActionSpace:
    def test_properties(self, space14):
        assert space14.lo == 2
        assert len(space14) == 13

    def test_clip(self, space14):
        assert space14.clip(1) == 2
        assert space14.clip(99) == 14
        assert space14.clip(7) == 7

    def test_clip_tie_prefers_smaller(self):
        # Equidistant ties must deterministically resolve to the
        # smaller node count (documented contract).
        space = ActionSpace(actions=(2, 4, 8, 10), n_total=10)
        assert space.clip(3) == 2    # tie between 2 and 4
        assert space.clip(6) == 4    # tie between 4 and 8
        assert space.clip(9) == 8    # tie between 8 and 10
        assert space.clip(5) == 4    # no tie: nearest wins

    def test_validation(self):
        with pytest.raises(ValueError):
            ActionSpace(actions=(), n_total=1)
        with pytest.raises(ValueError):
            ActionSpace(actions=(3, 2), n_total=3)
        with pytest.raises(ValueError):
            ActionSpace(actions=(1, 2), n_total=5)

    def test_from_cluster(self):
        from repro.platform import get_scenario

        cluster = get_scenario("b").build_cluster()
        space = ActionSpace.from_cluster(cluster, lo=2)
        assert space.n_total == 14
        assert space.group_boundaries == (2, 8, 14)
        assert space.actions == tuple(range(2, 15))


class TestActionSpaceContract:
    def test_contract_drops_lost_actions(self, space14):
        sub = space14.contract(9)
        assert sub.actions == tuple(range(2, 10))
        assert sub.n_total == 9
        assert sub.group_boundaries == (2, 8)

    def test_contract_noop_at_or_above_n(self, space14):
        assert space14.contract(14) is space14
        assert space14.contract(99) is space14

    def test_contract_shares_lp_bound(self):
        space = ActionSpace(actions=(2, 4, 8), n_total=8,
                            lp_bound=lambda n: 100.0 / n)
        sub = space.contract(4)
        assert sub.lp_bound is space.lp_bound
        assert sub.lp_bound(4) == pytest.approx(25.0)

    def test_contract_between_actions(self):
        # max_n between two allowed actions keeps only the lower ones.
        space = ActionSpace(actions=(2, 4, 8, 10), n_total=10)
        sub = space.contract(7)
        assert sub.actions == (2, 4)
        assert sub.n_total == 4

    def test_contract_clips_pending_proposal_of_crashed_best(self, space14):
        # A proposal queued for the (crashed) best arm must re-clip into
        # the surviving space, never escape it.
        pending = space14.n_total          # the best arm just crashed
        sub = space14.contract(10)
        clipped = sub.clip(pending)
        assert clipped == 10
        assert clipped in sub.actions

    def test_contract_single_action_degenerate(self, space14):
        sub = space14.contract(2)
        assert sub.actions == (2,)
        assert sub.n_total == 2
        assert len(sub) == 1
        # The degenerate space still clips everything onto its one arm.
        assert sub.clip(14) == 2
        assert sub.clip(1) == 2

    def test_contract_below_smallest_action_raises(self, space14):
        with pytest.raises(ValueError):
            space14.contract(1)


class TestActionSpaceProperties:
    """Property-style checks over randomized (seeded) spaces.

    The fault-resilience layer feeds ``contract``/``clip`` arbitrary
    combinations (crashes happen at any point of any space), so the
    invariants are checked over a seeded sample of spaces rather than a
    few hand-picked ones.
    """

    def _random_space(self, rng):
        import numpy as np

        n = int(rng.integers(2, 30))
        lo = int(rng.integers(1, n))
        # Random subset of lo..n, always keeping lo and n.
        members = {lo, n} | {
            int(a) for a in rng.choice(
                np.arange(lo, n + 1),
                size=int(rng.integers(0, n - lo + 1)),
                replace=False,
            )
        }
        return ActionSpace(actions=tuple(sorted(members)), n_total=n)

    def test_clip_is_nearest_member_preferring_smaller(self):
        import numpy as np

        rng = np.random.default_rng(1234)
        for _ in range(50):
            space = self._random_space(rng)
            for n in range(0, space.n_total + 3):
                clipped = space.clip(n)
                assert clipped in space.actions
                best = min(abs(a - n) for a in space.actions)
                assert abs(clipped - n) == best
                # Equidistant ties resolve to the smaller count.
                ties = [a for a in space.actions if abs(a - n) == best]
                assert clipped == min(ties)

    def test_contract_invariants(self):
        import numpy as np

        rng = np.random.default_rng(4321)
        for _ in range(50):
            space = self._random_space(rng)
            max_n = int(rng.integers(1, space.n_total + 3))
            if max_n < space.lo:
                with pytest.raises(ValueError):
                    space.contract(max_n)
                continue
            sub = space.contract(max_n)
            assert sub.actions == tuple(
                a for a in space.actions if a <= max_n
            )
            assert sub.n_total == sub.actions[-1]
            # Contraction is idempotent and clip never escapes it.
            assert sub.contract(max_n) is sub
            assert sub.clip(space.n_total) in sub.actions

    def test_contract_to_single_arm_keeps_space_usable(self, space14):
        sub = space14.contract(space14.lo)
        assert sub.actions == (space14.lo,)
        # Every query collapses onto the surviving arm.
        for n in (0, space14.lo, space14.n_total, 99):
            assert sub.clip(n) == space14.lo

    def test_contract_below_pending_proposal_reclips(self):
        # A crash may land between propose() and observe(): whatever was
        # pending must clip into the contracted space, for every
        # (pending, max_n) combination of a representative space.
        space = ActionSpace(actions=tuple(range(2, 15)), n_total=14,
                            group_boundaries=(2, 8, 14))
        for pending in space.actions:
            for max_n in range(space.lo, space.n_total + 1):
                sub = space.contract(max_n)
                assert sub.clip(pending) in sub.actions

    def test_dc_degenerate_space_fallback(self):
        # DC on a single-action space exhausts its interval before
        # measuring anything: it must fall back to the only action (via
        # n_total) instead of raising, and keep answering after
        # observations arrive.
        from repro.strategies import make_strategy

        space = ActionSpace(actions=(3,), n_total=3)
        dc = make_strategy("DC", space, seed=0)
        assert dc.propose() == 3
        dc.observe(3, 5.0)
        assert dc.propose() == 3


class TestStrategyBookkeeping:
    def test_all_nodes_always_n(self, space14):
        s = AllNodesStrategy(space14)
        assert [s.propose() for _ in range(3)] == [14, 14, 14]

    def test_observe_tracks_stats(self, space14):
        s = AllNodesStrategy(space14)
        s.observe(14, 10.0)
        s.observe(14, 12.0)
        assert s.iteration == 2
        assert s.mean_duration(14) == pytest.approx(11.0)
        assert s.times_selected(14) == 2

    def test_best_observed(self, space14):
        s = AllNodesStrategy(space14)
        s.observe(5, 10.0)
        s.observe(7, 4.0)
        s.observe(9, 8.0)
        assert s.best_observed() == 7

    def test_best_observed_empty(self, space14):
        with pytest.raises(RuntimeError):
            AllNodesStrategy(space14).best_observed()

    def test_negative_duration_rejected(self, space14):
        s = AllNodesStrategy(space14)
        with pytest.raises(ValueError):
            s.observe(14, -1.0)

    def test_mean_of_unknown_action(self, space14):
        with pytest.raises(KeyError):
            AllNodesStrategy(space14).mean_duration(5)


class TestOracle:
    def test_plays_fixed_action(self, space14):
        s = OracleStrategy(space14, best_action=6)
        assert [s.propose() for _ in range(3)] == [6, 6, 6]

    def test_validates_action(self, space14):
        with pytest.raises(ValueError):
            OracleStrategy(space14, best_action=99)

    def test_run_env_helper(self, space14):
        s = run_env(OracleStrategy(space14, best_action=6), lambda n: float(n), 5)
        assert s.iteration == 5
        assert s.mean_duration(6) == 6.0
