"""Tests for Brent minimization."""

import math

import pytest

from repro.strategies import BrentStrategy, brent_minimizer

from .conftest import convex, run_env


class TestBrentMinimizer:
    def drive(self, f, lo, hi, tol=1e-6):
        gen = brent_minimizer(lo, hi, tol=tol)
        x = gen.send(None)
        xs = [x]
        try:
            while True:
                x = gen.send(f(x))
                xs.append(x)
        except StopIteration:
            pass
        return xs

    def test_quadratic_minimum(self):
        xs = self.drive(lambda x: (x - 3.2) ** 2, 0.0, 10.0)
        assert xs[-1] == pytest.approx(3.2, abs=1e-3)

    def test_asymmetric_function(self):
        f = lambda x: 1.0 / x + 0.1 * x  # min at sqrt(10) ~ 3.162
        xs = self.drive(f, 0.5, 20.0)
        assert xs[-1] == pytest.approx(math.sqrt(10), abs=1e-2)

    def test_boundary_minimum(self):
        xs = self.drive(lambda x: x, 1.0, 9.0)
        assert xs[-1] < 1.5

    def test_invalid_bracket(self):
        with pytest.raises(ValueError):
            gen = brent_minimizer(5.0, 1.0)
            gen.send(None)

    def test_evaluation_count_small(self):
        xs = self.drive(lambda x: (x - 7.0) ** 2, 0.0, 100.0, tol=1e-4)
        assert len(xs) < 40


class TestBrentStrategy:
    def test_finds_min_of_smooth_convex(self, space14):
        s = run_env(BrentStrategy(space14), convex, 30)
        assert s.propose() in (4, 5, 6)

    def test_settles_and_exploits(self, space14):
        s = run_env(BrentStrategy(space14), convex, 40)
        assert len({s.propose() for _ in range(4)}) == 1

    def test_proposals_inside_space(self, space14):
        s = BrentStrategy(space14)
        for _ in range(25):
            n = s.propose()
            assert n in space14.actions
            s.observe(n, convex(n))

    def test_noise_sensitivity(self, space14):
        """Different noise seeds can end at different optima (Table I)."""
        finals = set()
        for seed in range(10):
            s = run_env(BrentStrategy(space14), convex, 30, noise_sd=6.0, seed=seed)
            finals.add(s.propose())
        assert len(finals) > 1
