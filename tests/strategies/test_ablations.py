"""Tests for the GP-discontinuous ablation switches."""

import pytest

from repro.strategies import GPDiscontinuousStrategy

from .conftest import run_env, stepped


class TestAblationFlags:
    def test_no_bound_keeps_full_space(self, space14_lp):
        s = GPDiscontinuousStrategy(space14_lp, use_bound=False)
        s.observe(14, 12.0)
        assert s.bound_left_point() == space14_lp.lo
        assert s._allowed_actions().min() == space14_lp.lo

    def test_bound_prunes_by_default(self, space14_lp):
        s = GPDiscontinuousStrategy(space14_lp)
        s.observe(14, 12.0)
        assert s.bound_left_point() > space14_lp.lo

    def test_no_residual_targets_raw_durations(self, space14_lp):
        s = GPDiscontinuousStrategy(space14_lp, model_residual=False)
        s.observe(14, 12.0)
        s.observe(7, 9.0)
        assert list(s._targets()) == [12.0, 9.0]
        assert all(v == 0.0 for v in s._baseline([3, 5]))

    def test_residual_targets_subtract_lp(self, space14_lp):
        s = GPDiscontinuousStrategy(space14_lp)
        s.observe(14, 12.0)
        lp_14 = space14_lp.lp_bound(14)
        assert s._targets()[0] == pytest.approx(12.0 - lp_14)

    def test_no_dummies_uses_linear_trend(self, space14_lp):
        from repro.gp import GroupDummyTrend, LinearTrend

        s_on = GPDiscontinuousStrategy(space14_lp)
        s_off = GPDiscontinuousStrategy(space14_lp, use_dummies=False)
        import numpy as np

        gp_on = s_on._make_gp(1e-4, np.array([1.0, 2.0]))
        gp_off = s_off._make_gp(1e-4, np.array([1.0, 2.0]))
        assert isinstance(gp_on.trend, GroupDummyTrend)
        assert isinstance(gp_off.trend, LinearTrend)

    def test_all_ablated_still_runs(self, space14_lp):
        s = GPDiscontinuousStrategy(
            space14_lp, use_bound=False, use_dummies=False, model_residual=False
        )
        s = run_env(s, stepped, 30, noise_sd=0.2, seed=0)
        assert s.iteration == 30
        assert all(x in space14_lp.actions for x in s.xs)

    def test_full_version_prefers_optimum_on_stepped(self, space14_lp):
        s = run_env(GPDiscontinuousStrategy(space14_lp), stepped, 50,
                    noise_sd=0.2, seed=1)
        most = max(set(s.xs), key=s.times_selected)
        assert abs(most - 8) <= 1
