"""Guard-rail behaviour of the Strategy machinery."""

import pytest

from repro.strategies import ActionSpace, Strategy


class _Broken(Strategy):
    """Strategy proposing an action outside the space."""

    def _next_action(self) -> int:
        return 999


class _Minimal(Strategy):
    def _next_action(self) -> int:
        return self.space.lo


@pytest.fixture
def space():
    return ActionSpace(actions=tuple(range(2, 8)), n_total=7)


class TestGuardRails:
    def test_out_of_space_proposal_rejected(self, space):
        with pytest.raises(RuntimeError, match="outside the action space"):
            _Broken(space).propose()

    def test_minimal_strategy_cycle(self, space):
        s = _Minimal(space)
        n = s.propose()
        s.observe(n, 3.0)
        assert s.iteration == 1
        assert s.best_observed() == n

    def test_seeded_rng_reproducible(self, space):
        s1, s2 = _Minimal(space, seed=9), _Minimal(space, seed=9)
        assert s1.rng.integers(1000) == s2.rng.integers(1000)

    def test_observe_accepts_zero_duration(self, space):
        s = _Minimal(space)
        s.observe(2, 0.0)
        assert s.mean_duration(2) == 0.0

    def test_stats_per_action_isolated(self, space):
        s = _Minimal(space)
        s.observe(2, 1.0)
        s.observe(3, 9.0)
        s.observe(2, 3.0)
        assert s.times_selected(2) == 2
        assert s.times_selected(3) == 1
        assert s.mean_duration(2) == 2.0
