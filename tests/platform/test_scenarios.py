"""Unit tests for the 16 evaluation scenarios."""

import pytest

from repro.platform import FIGURE2_KEYS, SCENARIOS, all_scenarios, get_scenario


class TestScenarioCatalog:
    def test_sixteen_scenarios(self):
        assert len(SCENARIOS) == 16
        assert sorted(SCENARIOS) == [chr(c) for c in range(ord("a"), ord("q"))]

    def test_figure2_subset(self):
        assert set(FIGURE2_KEYS) <= set(SCENARIOS)

    def test_all_scenarios_ordered(self):
        keys = [s.key for s in all_scenarios()]
        assert keys == sorted(keys)

    def test_scenario_table_is_locked(self):
        # The fuzzer's anchor derivation indexes all_scenarios() by
        # ``index % 16`` (repro.fuzz.platforms), so the table is an
        # interface: exactly the 16 letters a..p, in that order.  Adding,
        # removing or reordering scenarios silently reshuffles every
        # anchored fuzz corpus -- this pin makes that an explicit choice.
        keys = [s.key for s in all_scenarios()]
        assert keys == list("abcdefghijklmnop")
        assert set(FIGURE2_KEYS) <= set(keys)

    def test_get_scenario_unknown(self):
        with pytest.raises(ValueError):
            get_scenario("z")

    def test_modes_match_paper(self):
        real = {k for k, s in SCENARIOS.items() if s.mode == "Real"}
        assert real == {"a", "b", "c", "g", "h", "m"}

    @pytest.mark.parametrize(
        "key,label",
        [
            ("b", "G5K 2L-6M-6S 101"),
            ("i", "G5K 6L-30S 101"),
            ("m", "SD 64L 128"),
            ("p", "SD 64L-64S 128"),
        ],
    )
    def test_labels(self, key, label):
        assert get_scenario(key).label == label

    def test_full_label_contains_mode(self):
        assert get_scenario("i").full_label == "(i) G5K 6L-30S 101 (Simul)"

    @pytest.mark.parametrize(
        "key,total",
        [("a", 10), ("b", 14), ("c", 20), ("i", 36), ("m", 64), ("p", 128)],
    )
    def test_total_nodes(self, key, total):
        assert get_scenario(key).total_nodes == total


class TestScenarioClusters:
    @pytest.mark.parametrize("key", sorted(SCENARIOS))
    def test_build_cluster_sizes(self, key):
        scenario = get_scenario(key)
        cluster = scenario.build_cluster()
        assert len(cluster) == scenario.total_nodes

    def test_cluster_groups_follow_categories(self):
        cluster = get_scenario("b").build_cluster()
        assert [g.node_type.category for g in cluster.groups] == ["L", "M", "S"]
        assert cluster.group_sizes == (2, 6, 6)

    def test_homogeneous_scenario_single_group(self):
        cluster = get_scenario("m").build_cluster()
        assert cluster.group_sizes == (64,)

    def test_site_specific_network(self):
        g5k = get_scenario("b").build_cluster()
        sd = get_scenario("c").build_cluster()
        assert g5k.network.latency_s > sd.network.latency_s
