"""Unit tests for the network model."""

import pytest

from repro.platform import (
    B715,
    CHETEMI,
    CHIFFLOT,
    NetworkModel,
    Node,
    network_for_site,
)


@pytest.fixture
def net():
    return NetworkModel(latency_s=1e-5, backbone_gbps=200.0, efficiency=1.0)


def node(nt, idx=0):
    return Node(index=idx, node_type=nt)


class TestNetworkModel:
    def test_transfer_time_zero_for_self(self, net):
        a = node(CHETEMI, 0)
        assert net.transfer_time(a, a, 1e9) == 0.0

    def test_transfer_time_latency_plus_bandwidth(self, net):
        a, b = node(CHETEMI, 0), node(CHETEMI, 1)
        expected = 1e-5 + 1e9 / (20e9 / 8)
        assert net.transfer_time(a, b, 1e9) == pytest.approx(expected)

    def test_bandwidth_is_min_of_nics(self, net):
        slow, fast = node(CHETEMI, 0), node(CHIFFLOT, 1)
        assert net.link_bandwidth(slow, fast) == pytest.approx(20e9 / 8)

    def test_cross_site_capped_by_backbone(self):
        net = NetworkModel(backbone_gbps=5.0, efficiency=1.0)
        g5k, sd = node(CHETEMI, 0), node(B715, 1)
        assert net.link_bandwidth(g5k, sd) == pytest.approx(5e9 / 8)

    def test_no_backbone_cap_when_none(self):
        net = NetworkModel(backbone_gbps=None, efficiency=1.0)
        g5k, sd = node(CHETEMI, 0), node(B715, 1)
        assert net.link_bandwidth(g5k, sd) == pytest.approx(20e9 / 8)

    def test_efficiency_scales_bandwidth(self):
        net = NetworkModel(efficiency=0.5)
        a, b = node(CHETEMI, 0), node(CHETEMI, 1)
        assert net.link_bandwidth(a, b) == pytest.approx(0.5 * 20e9 / 8)

    def test_negative_bytes_rejected(self, net):
        a, b = node(CHETEMI, 0), node(CHETEMI, 1)
        with pytest.raises(ValueError):
            net.transfer_time(a, b, -1)

    def test_invalid_efficiency_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(efficiency=0.0)
        with pytest.raises(ValueError):
            NetworkModel(efficiency=1.5)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            NetworkModel(latency_s=-1.0)


class TestSiteNetworks:
    def test_sd_faster_latency_than_g5k(self):
        assert network_for_site("SD").latency_s < network_for_site("G5K").latency_s

    def test_unknown_site(self):
        with pytest.raises(ValueError):
            network_for_site("AWS")
