"""Unit tests for the heterogeneous cluster model."""

import pytest

from repro.platform import (
    B715,
    B715_GPU,
    CHETEMI,
    CHIFFLET,
    CHIFFLOT,
    Cluster,
    composition_label,
)


@pytest.fixture
def g5k_cluster():
    return Cluster([(CHIFFLOT, 2), (CHIFFLET, 6), (CHETEMI, 6)])


class TestClusterStructure:
    def test_length(self, g5k_cluster):
        assert len(g5k_cluster) == 14

    def test_nodes_sorted_fastest_first(self, g5k_cluster):
        speeds = [n.total_gflops for n in g5k_cluster]
        assert speeds == sorted(speeds, reverse=True)

    def test_sorting_independent_of_input_order(self):
        a = Cluster([(CHETEMI, 6), (CHIFFLOT, 2), (CHIFFLET, 6)])
        b = Cluster([(CHIFFLOT, 2), (CHIFFLET, 6), (CHETEMI, 6)])
        assert [n.node_type.name for n in a] == [n.node_type.name for n in b]

    def test_group_sizes(self, g5k_cluster):
        assert g5k_cluster.group_sizes == (2, 6, 6)

    def test_group_boundaries_are_ucb_struct_actions(self, g5k_cluster):
        assert g5k_cluster.group_boundaries == (2, 8, 14)

    def test_group_of(self, g5k_cluster):
        assert g5k_cluster.group_of(0) == 0
        assert g5k_cluster.group_of(1) == 0
        assert g5k_cluster.group_of(2) == 1
        assert g5k_cluster.group_of(7) == 1
        assert g5k_cluster.group_of(8) == 2
        assert g5k_cluster.group_of(13) == 2

    def test_group_of_count(self, g5k_cluster):
        assert g5k_cluster.group_of_count(2) == 0
        assert g5k_cluster.group_of_count(3) == 1

    def test_group_of_out_of_range(self, g5k_cluster):
        with pytest.raises(IndexError):
            g5k_cluster.group_of(14)

    def test_node_indices_are_contiguous(self, g5k_cluster):
        assert [n.index for n in g5k_cluster] == list(range(14))

    def test_default_name(self, g5k_cluster):
        assert g5k_cluster.name == "2L-6M-6S"

    def test_empty_composition_rejected(self):
        with pytest.raises(ValueError):
            Cluster([])

    def test_zero_count_rejected(self):
        with pytest.raises(ValueError):
            Cluster([(CHETEMI, 0)])


class TestClusterSubsetsAndSpeeds:
    def test_subset_returns_fastest(self, g5k_cluster):
        sub = g5k_cluster.subset(3)
        assert len(sub) == 3
        assert [n.category for n in sub] == ["L", "L", "M"]

    def test_subset_bounds(self, g5k_cluster):
        with pytest.raises(ValueError):
            g5k_cluster.subset(0)
        with pytest.raises(ValueError):
            g5k_cluster.subset(15)

    def test_total_gflops_monotone_in_n(self, g5k_cluster):
        totals = [g5k_cluster.total_gflops(n) for n in range(1, 15)]
        assert all(b > a for a, b in zip(totals, totals[1:]))

    def test_total_gflops_value(self, g5k_cluster):
        expected = 2 * CHIFFLOT.total_gflops + CHIFFLET.total_gflops
        assert g5k_cluster.total_gflops(3) == pytest.approx(expected)

    def test_generation_gflops_cpu_only(self, g5k_cluster):
        expected = 2 * CHIFFLOT.cpu_gflops + 6 * CHIFFLET.cpu_gflops + 6 * CHETEMI.cpu_gflops
        assert g5k_cluster.generation_gflops() == pytest.approx(expected)

    def test_speeds_length(self, g5k_cluster):
        assert len(g5k_cluster.speeds(5)) == 5

    def test_counts_by_category(self, g5k_cluster):
        assert g5k_cluster.counts_by_category() == {"L": 2, "M": 6, "S": 6}


class TestMemoryFeasibility:
    def test_min_nodes_for_small_matrix(self, g5k_cluster):
        assert g5k_cluster.min_nodes_for(1e9) == 1

    def test_min_nodes_accumulates(self):
        cluster = Cluster([(B715_GPU, 10), (B715, 10)])
        # B715 nodes hold 24 GB each -> 120.8 GB needs 6 nodes.
        assert cluster.min_nodes_for(120.8e9) == 6

    def test_min_nodes_too_large_raises(self):
        cluster = Cluster([(B715, 2)])
        with pytest.raises(ValueError, match="cannot hold"):
            cluster.min_nodes_for(1e15)

    def test_nonpositive_matrix(self, g5k_cluster):
        assert g5k_cluster.min_nodes_for(0) == 1


def test_composition_label():
    assert composition_label([(CHIFFLOT, 2), (CHETEMI, 4)]) == "2L-4S"
