"""Unit tests for node and node-type models."""

import pytest

from repro.platform import CHETEMI, CHIFFLOT, Node, NodeType


class TestNodeType:
    def test_total_gflops_sums_cpu_and_gpus(self):
        assert CHIFFLOT.total_gflops == pytest.approx(900.0 + 2 * 4200.0)

    def test_cpu_only_node_total_equals_cpu(self):
        assert CHETEMI.total_gflops == CHETEMI.cpu_gflops

    def test_generation_gflops_is_cpu_only(self):
        assert CHIFFLOT.generation_gflops == CHIFFLOT.cpu_gflops

    def test_nic_bytes_per_s(self):
        assert CHETEMI.nic_bytes_per_s == pytest.approx(20e9 / 8)

    def test_invalid_category_rejected(self):
        with pytest.raises(ValueError, match="category"):
            NodeType(
                name="x", site="G5K", category="XL", cpu_desc="", gpu_desc="",
                cpu_gflops=1.0, gpus=0, gpu_gflops=0.0, nic_gbps=1.0, memory_gb=1.0,
            )

    def test_nonpositive_cpu_rejected(self):
        with pytest.raises(ValueError, match="cpu_gflops"):
            NodeType(
                name="x", site="G5K", category="S", cpu_desc="", gpu_desc="",
                cpu_gflops=0.0, gpus=0, gpu_gflops=0.0, nic_gbps=1.0, memory_gb=1.0,
            )

    def test_gpu_without_speed_rejected(self):
        with pytest.raises(ValueError, match="GPU"):
            NodeType(
                name="x", site="G5K", category="M", cpu_desc="", gpu_desc="g",
                cpu_gflops=1.0, gpus=2, gpu_gflops=0.0, nic_gbps=1.0, memory_gb=1.0,
            )

    def test_zero_cpu_slots_rejected(self):
        with pytest.raises(ValueError, match="cpu_slots"):
            NodeType(
                name="x", site="G5K", category="S", cpu_desc="", gpu_desc="",
                cpu_gflops=1.0, gpus=0, gpu_gflops=0.0, nic_gbps=1.0,
                memory_gb=1.0, cpu_slots=0,
            )

    def test_describe_mentions_category_and_machine(self):
        text = CHIFFLOT.describe()
        assert "chifflot" in text
        assert text.startswith("L")

    def test_frozen(self):
        with pytest.raises(AttributeError):
            CHETEMI.cpu_gflops = 1.0


class TestNode:
    def test_default_hostname(self):
        node = Node(index=3, node_type=CHETEMI)
        assert node.hostname == "chetemi-3"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Node(index=-1, node_type=CHETEMI)

    def test_category_and_speed_delegate_to_type(self):
        node = Node(index=0, node_type=CHIFFLOT)
        assert node.category == "L"
        assert node.total_gflops == CHIFFLOT.total_gflops
        assert node.generation_gflops == CHIFFLOT.cpu_gflops
