"""`repro timeline`: CLI behaviour and byte-determinism of the exports.

The ISSUE's acceptance criterion: the Chrome-trace JSON, Paje CSV and
HTML report must be byte-identical across two consecutive runs *and*
across harness worker counts (the artifacts are pure functions of the
simulated plan, never of host parallelism).
"""

import json

import pytest

from repro.cli import main

ARTIFACTS = ("TIMELINE_b.trace.json", "TIMELINE_b.csv", "TIMELINE_b.html")


@pytest.fixture(autouse=True)
def small(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TILES_101", "8")
    monkeypatch.setenv("REPRO_TILES_128", "8")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "banks"))
    monkeypatch.chdir(tmp_path)


def export(tmp_path, name, extra=()):
    out = tmp_path / name
    assert main(["timeline", "b", "--out", str(out), "--no-ascii",
                 *extra]) == 0
    return {a: (out / a).read_bytes() for a in ARTIFACTS}


class TestDeterminism:
    def test_byte_identical_across_consecutive_runs(self, tmp_path, capsys):
        first = export(tmp_path, "run1")
        second = export(tmp_path, "run2")
        assert first == second

    def test_byte_identical_across_worker_counts(self, tmp_path, capsys,
                                                 monkeypatch):
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "1")
        one = export(tmp_path, "w1")
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        two = export(tmp_path, "w2")
        assert one == two


class TestArtifacts:
    def test_chrome_trace_parses_with_invariants(self, tmp_path, capsys):
        files = export(tmp_path, "out")
        trace = json.loads(files["TIMELINE_b.trace.json"])
        assert trace["traceEvents"]
        other = trace["otherData"]
        assert other["schema"] == 1
        assert 0.0 < other["critical_path_s"] <= other["makespan_s"] + 1e-9
        assert 0.0 <= other["mean_idleness"] <= 1.0

    def test_html_is_self_contained(self, tmp_path, capsys):
        files = export(tmp_path, "out")
        page = files["TIMELINE_b.html"].decode("utf-8").lower()
        assert "<svg" in page
        assert "<script" not in page
        assert "http" not in page

    def test_csv_header(self, tmp_path, capsys):
        files = export(tmp_path, "out")
        first_line = files["TIMELINE_b.csv"].decode("utf-8").splitlines()[0]
        assert first_line == (
            "Nature,ResourceId,Type,Start,End,Duration,Value,Detail"
        )


class TestOutput:
    def test_summary_and_ascii(self, tmp_path, capsys):
        out = tmp_path / "out"
        assert main(["timeline", "b", "--out", str(out)]) == 0
        text = capsys.readouterr().out
        assert "makespan" in text
        assert "critical path" in text
        assert "~comm" in text  # NIC occupancy rows from --ascii default
        assert "TIMELINE_b.html" in text

    def test_explicit_plan_changes_config(self, tmp_path, capsys):
        out = tmp_path / "out"
        assert main(["timeline", "b", "--out", str(out),
                     "--n-fact", "2", "--n-gen", "3"]) == 0
        assert "n_gen=3, n_fact=2" in capsys.readouterr().out

    def test_invalid_plan_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="node counts"):
            main(["timeline", "b", "--out", str(tmp_path / "out"),
                  "--n-fact", "999"])
