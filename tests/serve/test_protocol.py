"""Goldens and exit paths of the serve wire protocol (serve/protocol.py)."""

import json

import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    ERROR_CODES,
    MAX_LINE_BYTES,
    SERVE_SCHEMA_VERSION,
    ProtocolError,
    error_response,
    parse_request,
    parse_response,
    render,
)


class TestRenderGoldens:
    """The canonical encoding is pinned byte for byte: the bench and CI
    compare whole report files, so a silent encoding change must fail
    loudly here first."""

    def test_propose_golden(self):
        assert render(protocol.propose("t0001")) == (
            '{"kind":"propose","schema":1,"tenant":"t0001"}'
        )

    def test_bye_golden(self):
        assert render(protocol.bye("t9")) == (
            '{"kind":"bye","schema":1,"tenant":"t9"}'
        )

    def test_observe_golden(self):
        assert render(protocol.observe("t1", 8, 2.5)) == (
            '{"duration":2.5,"kind":"observe","n":8,"schema":1,'
            '"tenant":"t1"}'
        )

    def test_hello_scenario_golden(self):
        assert render(protocol.hello("t1", "UCB", 0, scenario="b")) == (
            '{"kind":"hello","scenario":"b","schema":1,"seed":0,'
            '"strategy":"UCB","tenant":"t1"}'
        )

    def test_proposal_golden(self):
        assert render(protocol.proposal("t1", n=12, tick=3)) == (
            '{"kind":"proposal","n":12,"schema":1,"tenant":"t1","tick":3}'
        )

    def test_render_is_single_line(self):
        space = {"actions": [1, 2, 4], "group_boundaries": []}
        line = render(protocol.hello("t1", "UCB", 0, space=space))
        assert "\n" not in line


class TestRoundTrip:
    def test_every_request_kind_round_trips(self):
        space = {"actions": [1, 2, 4, 8], "group_boundaries": [4]}
        for message in (
            protocol.hello("t1", "UCB", 3, scenario="b"),
            protocol.hello("t2", "DC", 0, space=space),
            protocol.observe("t1", 4, 12.75),
            protocol.propose("t1"),
            protocol.bye("t1"),
        ):
            parsed = parse_request(render(message))
            assert parsed["kind"] == message["kind"]
            assert parsed["tenant"] == message["tenant"]

    def test_every_response_kind_round_trips(self):
        for message in (
            protocol.welcome("t1", shard=2, actions=[1, 2, 4]),
            protocol.ack("t1", observed=3, tick=7),
            protocol.proposal("t1", n=4, tick=7),
            protocol.goodbye("t1", proposes=5, observes=12),
            error_response(ProtocolError("bad-field", "nope"), "t1"),
        ):
            parsed = parse_response(render(message))
            assert parsed["kind"] == message["kind"]

    def test_hello_space_is_normalized(self):
        space = {"actions": [1, 2, 4], "group_boundaries": []}
        parsed = parse_request(render(protocol.hello(
            "t1", "UCB", 0, space=space)))
        assert parsed["space"] == {"actions": [1, 2, 4],
                                   "group_boundaries": []}


def _code_of(line: str) -> str:
    with pytest.raises(ProtocolError) as exc:
        parse_request(line)
    assert exc.value.code in ERROR_CODES
    return exc.value.code


class TestMalformedRequests:
    def test_line_too_long(self):
        line = render(protocol.observe("t" * (MAX_LINE_BYTES + 16), 1, 0.0))
        assert _code_of(line) == "line-too-long"

    def test_malformed_json(self):
        assert _code_of("not json at all {") == "malformed-json"

    def test_not_an_object(self):
        assert _code_of("[1, 2, 3]") == "not-an-object"

    def test_missing_schema(self):
        assert _code_of('{"kind":"propose","tenant":"t1"}') == "bad-schema"

    def test_wrong_schema_version(self):
        body = protocol.propose("t1")
        body["schema"] = SERVE_SCHEMA_VERSION + 1
        assert _code_of(render(body)) == "bad-schema"

    def test_unknown_kind(self):
        assert _code_of(
            '{"kind":"shout","schema":1,"tenant":"t1"}') == "unknown-kind"

    def test_missing_tenant(self):
        assert _code_of('{"kind":"propose","schema":1}') == "missing-field"

    def test_empty_tenant(self):
        assert _code_of(
            '{"kind":"propose","schema":1,"tenant":""}') == "bad-field"

    def test_boolean_is_not_an_int(self):
        body = protocol.observe("t1", 1, 0.5)
        body["n"] = True
        assert _code_of(render(body)) == "bad-field"

    def test_observe_rejects_nonpositive_n(self):
        body = protocol.observe("t1", 0, 0.5)
        assert _code_of(render(body)) == "bad-field"

    def test_observe_rejects_nonfinite_duration(self):
        line = ('{"duration":Infinity,"kind":"observe","n":1,"schema":1,'
                '"tenant":"t1"}')
        assert _code_of(line) == "bad-field"

    def test_hello_needs_scenario_or_space(self):
        body = protocol.hello("t1", "UCB", 0)
        assert _code_of(render(body)) == "missing-field"

    def test_hello_rejects_both_scenario_and_space(self):
        body = protocol.hello(
            "t1", "UCB", 0, scenario="b",
            space={"actions": [1], "group_boundaries": []})
        assert _code_of(render(body)) == "missing-field"

    def test_hello_rejects_negative_seed(self):
        body = protocol.hello("t1", "UCB", -1, scenario="b")
        assert _code_of(render(body)) == "bad-field"

    @pytest.mark.parametrize("space", [
        "not a dict",
        {"actions": []},
        {"actions": [0, 1]},
        {"actions": [2, 1]},
        {"actions": [1, 1]},
        {"actions": [1, 2], "group_boundaries": "x"},
    ])
    def test_bad_spaces(self, space):
        body = protocol.hello("t1", "UCB", 0)
        body["space"] = space
        assert _code_of(render(body)) == "bad-space"


class TestErrorResponses:
    def test_error_response_carries_stable_code(self):
        err = ProtocolError("unknown-tenant", "t1 never said hello")
        body = error_response(err, "t1")
        assert body["code"] == "unknown-tenant"
        assert body["tenant"] == "t1"
        assert json.loads(render(body))["kind"] == "error"

    def test_unknown_code_is_a_programming_error(self):
        with pytest.raises(ValueError):
            ProtocolError("no-such-code", "x")
