"""Asyncio front-end smoke: one real socket client, full lifecycle."""

import asyncio
import os

from repro.serve import protocol
from repro.serve.service import TuningService, serve_forever

SPACE = {"actions": [1, 2, 4, 8], "group_boundaries": []}


async def _readline(reader) -> dict:
    raw = await asyncio.wait_for(reader.readline(), timeout=10)
    return protocol.parse_response(raw.decode("utf-8").strip())


async def _scenario() -> None:
    service = TuningService(num_shards=2)
    ready = asyncio.Event()
    port = 18902 + os.getpid() % 500
    server = asyncio.ensure_future(serve_forever(
        service, port=port, tick_interval=0.01, ready=ready))
    try:
        await asyncio.wait_for(ready.wait(), timeout=10)
        reader, writer = await asyncio.open_connection("127.0.0.1", port)

        async def send(message) -> None:
            writer.write((protocol.render(message) + "\n").encode("utf-8"))
            await writer.drain()

        await send(protocol.hello("t1", "UCB", 0, space=dict(SPACE)))
        welcome = await _readline(reader)
        assert welcome["kind"] == "welcome"
        assert welcome["actions"] == SPACE["actions"]

        await send(protocol.propose("t1"))
        proposal = await _readline(reader)
        assert proposal["kind"] == "proposal"
        assert proposal["n"] in SPACE["actions"]

        await send(protocol.observe("t1", int(proposal["n"]), 3.5))
        ack = await _readline(reader)
        assert ack["kind"] == "ack"
        assert ack["observed"] == 1

        # A malformed line is answered with an error, not a hangup.
        writer.write(b"this is not json\n")
        await writer.drain()
        err = await _readline(reader)
        assert err["kind"] == "error"
        assert err["code"] == "malformed-json"

        # An unknown tenant is refused with a stable code.
        await send(protocol.propose("ghost"))
        err = await _readline(reader)
        assert err["kind"] == "error"
        assert err["code"] == "unknown-tenant"

        await send(protocol.bye("t1"))
        goodbye = await _readline(reader)
        assert goodbye["kind"] == "goodbye"
        assert goodbye["proposes"] == 1
        assert goodbye["observes"] == 1

        writer.close()
    finally:
        server.cancel()
        try:
            await server
        except asyncio.CancelledError:
            pass
    assert service.retired["t1"].closed
    assert service.registry.counter("serve.error").value == 2


def test_socket_lifecycle_smoke():
    asyncio.run(_scenario())
