"""Load-generator determinism: seeded streams, shard invariance, SLOs."""

import json

import pytest

from repro.measure.bank import synthetic_bank
from repro.obs.series import SeriesStore
from repro.obs.slo import evaluate_rules
from repro.serve.loadgen import (
    SERVE_P99_BOUND,
    TenantSpec,
    run_bench,
    sample_tenants,
    serve_rules,
    write_serve_report,
)
from repro.serve.service import BankStore

TENANTS = 48


def _synthetic_store() -> BankStore:
    """A bank store pre-seeded with synthetic banks for every table
    scenario, so bench tests never sweep a simulator."""
    from repro.platform.scenarios import SCENARIOS

    store = BankStore()
    for index, key in enumerate(sorted(SCENARIOS)):
        bank = synthetic_bank(
            lambda n, c=index: 30.0 / n + 0.25 * n + c,
            actions=(1, 2, 4, 8, 12, 16),
            seed=index,
            label=f"synthetic-{key}",
        )
        store.put(store.scenario_fingerprint(SCENARIOS[key]), bank)
    return store


def _bench(shards: int, **kwargs):
    kwargs.setdefault("tenants", TENANTS)
    kwargs.setdefault("fuzz_count", 0)
    kwargs.setdefault("bank_store", _synthetic_store())
    return run_bench(shards=shards, **kwargs)


class TestSampleTenants:
    def test_pure_function_of_the_seed(self):
        a = sample_tenants(32, seed=3, fuzz_count=0)
        b = sample_tenants(32, seed=3, fuzz_count=0)
        assert a == b

    def test_distinct_seeds_distinct_populations(self):
        assert sample_tenants(32, seed=0, fuzz_count=0) != \
            sample_tenants(32, seed=1, fuzz_count=0)

    def test_spec_shape(self):
        spec = sample_tenants(1, fuzz_count=0)[0]
        assert isinstance(spec, TenantSpec)
        assert spec.tenant_id == "t0000"
        assert spec.source == "table"
        assert spec.iterations >= 8


class TestShardInvariance:
    def test_report_identical_at_shards_1_and_4(self):
        report_1 = _bench(shards=1)
        report_4 = _bench(shards=4)
        assert json.dumps(report_1, sort_keys=True) == \
            json.dumps(report_4, sort_keys=True)

    def test_written_artifact_bytes_identical(self, tmp_path):
        path_1 = write_serve_report(_bench(shards=1),
                                    path=tmp_path / "one.json")
        path_4 = write_serve_report(_bench(shards=4),
                                    path=tmp_path / "four.json")
        assert path_1.read_bytes() == path_4.read_bytes()

    def test_double_run_identical(self):
        assert _bench(shards=2) == _bench(shards=2)


class TestBenchReport:
    @pytest.fixture(scope="class")
    def report(self):
        return _bench(shards=2)

    def test_every_tenant_completes(self, report):
        assert report["metrics"]["serve.tenants"] == float(TENANTS)
        assert report["ok"] is True

    def test_latency_metrics_within_bound(self, report):
        metrics = report["metrics"]
        assert 1.0 <= metrics["serve.propose_p99_ticks"] <= SERVE_P99_BOUND
        assert metrics["serve.propose_p50_ticks"] <= \
            metrics["serve.propose_p99_ticks"]
        assert metrics["serve.errors"] == 0.0

    def test_banks_are_shared_not_rebuilt(self, report):
        metrics = report["metrics"]
        # Far fewer bank materializations than tenants: same-scenario
        # tenants share one bank through the fingerprint registry.
        assert metrics["serve.banks.banks"] <= 16.0
        assert metrics["serve.banks.hits"] > 0.0

    def test_slo_verdicts_cover_the_rules(self, report):
        names = {v["rule"] for v in report["slo"]}
        assert names == {"serve-propose-p99", "serve-propose-mean",
                         "serve-latency-burn"}
        assert all(v["ok"] for v in report["slo"])

    def test_per_strategy_rows_sum_to_population(self, report):
        total = sum(row["tenants"]
                    for row in report["per_strategy"].values())
        assert total == float(TENANTS)

    def test_config_omits_the_shard_count(self, report):
        # The report must be a pure function of the tenant population;
        # a shard field would break the cross-shard byte-identity gate.
        assert "shards" not in report["config"]


class TestServeSloRules:
    def test_p99_rule_trips_above_the_bound(self):
        store = SeriesStore(capacity=512)
        for i in range(100):
            store.record("serve.propose_latency_ticks",
                         2.0 * SERVE_P99_BOUND, tick=float(i))
        verdicts = evaluate_rules(store, serve_rules())
        p99 = next(v for v in verdicts if v["rule"] == "serve-propose-p99")
        assert not p99["ok"]

    def test_healthy_stream_passes_every_rule(self):
        store = SeriesStore(capacity=512)
        for i in range(100):
            store.record("serve.propose_latency_ticks", 1.0,
                         tick=float(i))
        assert all(v["ok"] for v in evaluate_rules(store, serve_rules()))
