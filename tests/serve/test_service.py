"""In-process service semantics: routing, batching, retirement, errors."""

import json

import pytest

from repro.measure.bank import synthetic_bank
from repro.serve import protocol
from repro.serve.protocol import ProtocolError
from repro.serve.service import BankStore, TuningService, shard_for
from repro.serve.session import (
    DEFAULT_OBSERVE_BATCH,
    TenantSession,
    derive_tenant_seed,
    space_from_wire,
)

SPACE = {"actions": [1, 2, 4, 8, 16], "group_boundaries": []}


def _service(**kwargs):
    kwargs.setdefault("num_shards", 2)
    return TuningService(**kwargs)


def _register(service, tenant, strategy="UCB", seed=0):
    return service.handle(protocol.hello(tenant, strategy, seed,
                                         space=dict(SPACE)))


class TestShardHashing:
    def test_stable_across_calls(self):
        assert shard_for("t0001", 4) == shard_for("t0001", 4)

    def test_in_range_and_spread(self):
        shards = {shard_for(f"t{i:04d}", 4) for i in range(64)}
        assert shards == {0, 1, 2, 3}

    def test_single_shard_takes_everything(self):
        assert shard_for("anything", 1) == 0

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            shard_for("t", 0)


class TestTenantSeed:
    def test_independent_of_registration_order(self):
        assert derive_tenant_seed("t1", 7) == derive_tenant_seed("t1", 7)

    def test_distinct_tenants_distinct_seeds(self):
        assert derive_tenant_seed("t1") != derive_tenant_seed("t2")


class TestLifecycle:
    def test_hello_answers_welcome_with_actions(self):
        service = _service()
        welcome = _register(service, "t1")
        assert welcome["kind"] == "welcome"
        assert welcome["actions"] == SPACE["actions"]
        assert welcome["shard"] == shard_for("t1", 2)

    def test_propose_is_answered_on_the_next_tick(self):
        service = _service()
        _register(service, "t1")
        assert service.handle(protocol.propose("t1")) is None
        responses = service.tick()
        kinds = [r["kind"] for r in responses]
        assert kinds == ["proposal"]
        assert responses[0]["tenant"] == "t1"
        assert responses[0]["n"] in SPACE["actions"]

    def test_observe_then_propose_same_tick(self):
        service = _service()
        _register(service, "t1")
        service.handle(protocol.observe("t1", 4, 10.0))
        service.handle(protocol.propose("t1"))
        kinds = [r["kind"] for r in service.tick()]
        assert kinds == ["ack", "proposal"]

    def test_bye_retires_the_session_with_stats(self):
        service = _service()
        _register(service, "t1")
        service.handle(protocol.propose("t1"))
        service.tick()
        service.handle(protocol.bye("t1"))
        responses = service.tick()
        assert responses[-1]["kind"] == "goodbye"
        assert responses[-1]["proposes"] == 1
        assert service.active_tenants() == 0
        assert "t1" in service.retired
        assert service.retired["t1"].proposes == 1

    def test_duplicate_hello_is_refused(self):
        service = _service()
        _register(service, "t1")
        with pytest.raises(ProtocolError) as exc:
            _register(service, "t1")
        assert exc.value.code == "duplicate-tenant"

    def test_retired_tenant_cannot_rejoin(self):
        service = _service()
        _register(service, "t1")
        service.handle(protocol.bye("t1"))
        service.tick()
        with pytest.raises(ProtocolError) as exc:
            _register(service, "t1")
        assert exc.value.code == "duplicate-tenant"

    def test_unknown_tenant_is_refused(self):
        service = _service()
        with pytest.raises(ProtocolError) as exc:
            service.handle(protocol.propose("ghost"))
        assert exc.value.code == "unknown-tenant"

    def test_unknown_strategy_is_refused(self):
        service = _service()
        with pytest.raises(ProtocolError) as exc:
            _register(service, "t1", strategy="NoSuchStrategy")
        assert exc.value.code == "unknown-strategy"

    def test_unknown_scenario_is_refused(self):
        service = _service()
        with pytest.raises(ProtocolError) as exc:
            service.handle(protocol.hello("t1", "UCB", 0, scenario="zz"))
        assert exc.value.code == "unknown-scenario"


class TestBatching:
    def test_observe_backlog_drains_at_batch_rate(self):
        service = _service(num_shards=1)
        _register(service, "t1")
        backlog = DEFAULT_OBSERVE_BATCH + 3
        for _ in range(backlog):
            service.handle(protocol.observe("t1", 4, 5.0))
        first = [r["kind"] for r in service.tick()]
        assert first == ["ack"] * DEFAULT_OBSERVE_BATCH
        second = [r["kind"] for r in service.tick()]
        assert second == ["ack"] * 3

    def test_arrival_order_is_preserved_across_ticks(self):
        # propose blocks later observes: the client's stream ordering
        # is preserved even when the propose budget is exhausted.
        service = _service(num_shards=1)
        _register(service, "t1")
        service.handle(protocol.propose("t1"))
        service.handle(protocol.propose("t1"))
        service.handle(protocol.observe("t1", 4, 5.0))
        first = [r["kind"] for r in service.tick()]
        assert first == ["proposal"]
        second = [r["kind"] for r in service.tick()]
        assert second == ["proposal", "ack"]

    def test_propose_latency_counts_queue_ticks(self):
        service = _service(num_shards=1)
        _register(service, "t1")
        service.handle(protocol.propose("t1"))
        service.handle(protocol.propose("t1"))
        service.tick()
        service.tick()
        session = service.retired.get("t1") or service.session_of("t1")
        assert session.propose_latencies == [1, 2]


class TestHandleLine:
    def test_wire_error_comes_back_rendered(self):
        service = _service()
        reply = service.handle_line("{broken")
        body = json.loads(reply)
        assert body["kind"] == "error"
        assert body["code"] == "malformed-json"
        assert service.registry.counter("serve.error").value == 1

    def test_wire_hello_round_trip(self):
        service = _service()
        line = protocol.render(protocol.hello("t1", "UCB", 0,
                                              space=dict(SPACE)))
        body = json.loads(service.handle_line(line))
        assert body["kind"] == "welcome"

    def test_queued_request_returns_nothing(self):
        service = _service()
        _register(service, "t1")
        line = protocol.render(protocol.propose("t1"))
        assert service.handle_line(line) is None


class TestBankStore:
    def test_put_get_counts_hits_and_misses(self):
        store = BankStore()
        bank = synthetic_bank(lambda n: 10.0 / n, actions=(1, 2, 4))
        assert store.get("fp") is None
        store.put("fp", bank)
        assert store.get("fp") is bank
        assert store.stats()["hits"] == 1.0
        assert store.stats()["misses"] == 1.0
        assert len(store) == 1

    def test_scenario_fingerprint_is_stable(self, monkeypatch):
        monkeypatch.setenv("REPRO_TILES_101", "10")
        monkeypatch.setenv("REPRO_TILES_128", "10")
        from repro.platform.scenarios import SCENARIOS

        store = BankStore()
        fp1 = store.scenario_fingerprint(SCENARIOS["b"])
        fp2 = BankStore().scenario_fingerprint(SCENARIOS["b"])
        assert fp1 == fp2
        assert fp1 != store.scenario_fingerprint(SCENARIOS["c"])


class TestSessionUnits:
    def test_space_from_wire_has_degenerate_lp_bound(self):
        space = space_from_wire({"actions": [1, 2, 4],
                                 "group_boundaries": []})
        assert space.actions == (1, 2, 4)
        assert space.n_total == 4
        assert space.lp_bound(2) == 0.0

    def test_closed_session_rejects_enqueue(self):
        space = space_from_wire({"actions": [1, 2, 4],
                                 "group_boundaries": []})
        session = TenantSession("t1", "UCB", space)
        session.enqueue(protocol.bye("t1"), 0)
        session.step(0)
        assert session.closed
        with pytest.raises(ProtocolError) as exc:
            session.enqueue(protocol.propose("t1"), 1)
        assert exc.value.code == "unknown-tenant"

    def test_budgets_must_be_positive(self):
        space = space_from_wire({"actions": [1, 2],
                                 "group_boundaries": []})
        with pytest.raises(ValueError):
            TenantSession("t1", "UCB", space, observe_batch=0)
