"""Smoke tests: every example script runs end-to-end (reduced sizes)."""

import runpy
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

FAST_ENV = {
    "REPRO_TILES_101": "10",
    "REPRO_TILES_128": "10",
}


def run_example(name, tmp_path, extra_env=None, timeout=240):
    env = dict(FAST_ENV)
    env["REPRO_CACHE_DIR"] = str(tmp_path)
    if extra_env:
        env.update(extra_env)
    import os

    full_env = dict(os.environ)
    full_env.update(env)
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
        env=full_env,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self, tmp_path):
        out = run_example("quickstart.py", tmp_path)
        assert "gain vs all nodes" in out
        assert "GP-discontinuous" in out

    def test_geostat_likelihood(self, tmp_path):
        out = run_example("geostat_likelihood.py", tmp_path)
        assert "estimated range" in out

    def test_custom_cluster(self, tmp_path):
        out = run_example("custom_cluster.py", tmp_path)
        assert "best configuration" in out

    def test_trace_timeline(self, tmp_path):
        out = run_example("trace_timeline.py", tmp_path)
        assert "fastest: iteration 3" in out

    def test_strategy_comparison_reduced(self, tmp_path):
        # Pass a small scenario and few reps through argv.
        import os

        env = dict(os.environ)
        env.update(FAST_ENV)
        env["REPRO_CACHE_DIR"] = str(tmp_path)
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / "strategy_comparison.py"), "b", "2"],
            capture_output=True, text=True, timeout=240, env=env,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert "GP-discontinuous" in result.stdout

    def test_two_dimensional(self, tmp_path):
        out = run_example("two_dimensional.py", tmp_path, timeout=400)
        assert "GP-2D" in out
        assert "sweep optimum" in out
