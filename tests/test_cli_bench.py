"""Golden characterization of the `repro bench` CLI.

Pins the JSON schema of ``BENCH_harness.json`` (keys and types -- the
perf-trajectory tooling parses it) and the exit codes for bad
``--workers`` / unknown scenarios.
"""

import json

import pytest

from repro.cli import main

BENCH_ARGS = [
    "bench", "--scenarios", "b", "--strategies", "DC", "UCB",
    "--reps", "2", "--iterations", "10", "--workers", "2",
]

#: The pinned top-level schema: key -> required type(s).
TOP_LEVEL_SCHEMA = {
    "schema": int,
    "config": dict,
    "serial_seconds": float,
    "parallel_seconds": float,
    "speedup": float,
    "identical": bool,
    "cache": dict,
    "cache_cold": dict,
    "phases": dict,
    "cells": list,
}

CONFIG_SCHEMA = {
    "scenarios": list,
    "strategies": list,
    "iterations": int,
    "reps": int,
    "workers": int,
    "augment": int,
}

CACHE_STATS_SCHEMA = {
    "hits": int,
    "misses": int,
    "hit_rate": float,
    "entries": int,
}

CACHE_SCHEMA = dict(CACHE_STATS_SCHEMA, preloaded_entries=int)

PHASES_SCHEMA = {
    "sweep_serial_seconds": float,
    "eval_serial_seconds": float,
    "sweep_warm_seconds": float,
    "eval_parallel_seconds": float,
}

CELL_SCHEMA = {"scenario": str, "strategy": str, "rep": int, "seconds": float}


@pytest.fixture(autouse=True)
def small(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TILES_101", "10")
    monkeypatch.setenv("REPRO_TILES_128", "10")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "banks"))
    # The default --root-out writes BENCH_harness.json into the cwd.
    monkeypatch.chdir(tmp_path)


def _check(payload: dict, schema: dict) -> None:
    assert set(payload) == set(schema)
    for key, expected in schema.items():
        assert isinstance(payload[key], expected), (key, payload[key])


class TestBenchReportSchema:
    @pytest.fixture()
    def report(self, tmp_path):
        out = tmp_path / "out" / "report.json"
        assert main(BENCH_ARGS + ["--out", str(out)]) == 0
        return json.loads(out.read_text())

    def test_top_level_schema_is_stable(self, report):
        _check(report, TOP_LEVEL_SCHEMA)
        assert report["schema"] == 1

    def test_config_echoes_invocation(self, report):
        _check(report["config"], CONFIG_SCHEMA)
        assert report["config"]["scenarios"] == ["b"]
        assert report["config"]["strategies"] == ["DC", "UCB"]
        assert report["config"]["workers"] == 2

    def test_cache_and_phase_blocks(self, report):
        _check(report["cache"], CACHE_SCHEMA)
        _check(report["cache_cold"], CACHE_STATS_SCHEMA)
        _check(report["phases"], PHASES_SCHEMA)
        # Pass B is fully warm: every sweep lookup is a hit.
        assert report["cache"]["hit_rate"] == 1.0
        assert report["cache"]["misses"] == 0

    def test_per_cell_timings(self, report):
        # 2 baselines + 2 strategies, 2 reps each, one scenario.
        assert len(report["cells"]) == 4 * 2
        for cell in report["cells"]:
            _check(cell, CELL_SCHEMA)
            assert cell["scenario"] == "b"
            assert cell["seconds"] >= 0.0
        names = {c["strategy"] for c in report["cells"]}
        assert names == {"All-nodes", "Oracle", "DC", "UCB"}

    def test_parallel_identical_to_serial(self, report):
        assert report["identical"] is True
        assert report["speedup"] > 0.0

    def test_root_copy_mirrors_report(self, report, tmp_path):
        root = tmp_path / "BENCH_harness.json"
        assert root.exists()
        assert json.loads(root.read_text()) == report

    def test_root_copy_can_be_disabled(self, tmp_path):
        out = tmp_path / "report.json"
        assert main(BENCH_ARGS + ["--out", str(out), "--root-out", ""]) == 0
        assert not (tmp_path / "BENCH_harness.json").exists()

    def test_spill_warms_the_next_invocation(self, tmp_path):
        out = tmp_path / "out" / "BENCH_harness.json"
        assert main(BENCH_ARGS + ["--out", str(out)]) == 0
        first = json.loads(out.read_text())
        assert first["cache"]["preloaded_entries"] == 0
        assert (out.parent / "BENCH_durations.json").exists()

        assert main(BENCH_ARGS + ["--out", str(out)]) == 0
        second = json.loads(out.read_text())
        assert second["cache"]["preloaded_entries"] > 0
        # With the spill preloaded even pass A is warm.
        assert second["cache_cold"]["hits"] > 0

    def test_no_spill_flag(self, tmp_path):
        out = tmp_path / "BENCH_harness.json"
        assert main(BENCH_ARGS + ["--out", str(out), "--no-spill"]) == 0
        report = json.loads(out.read_text())
        assert report["cache"]["preloaded_entries"] == 0
        assert not (tmp_path / "BENCH_durations.json").exists()


class TestBenchExitCodes:
    def test_zero_workers_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--workers", "0"])
        assert exc.value.code == 2
        assert "--workers" in capsys.readouterr().err

    def test_negative_workers_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--workers", "-3"])
        assert exc.value.code == 2

    def test_unknown_scenario_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--scenarios", "zz"])
        assert exc.value.code == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_unknown_strategy_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--strategies", "Nope"])
        assert exc.value.code == 2
        assert "unknown strategy" in capsys.readouterr().err

    def test_non_integer_workers_exits_2(self):
        with pytest.raises(SystemExit) as exc:
            main(["bench", "--workers", "two"])
        assert exc.value.code == 2  # argparse usage error
