"""Unit tests for the discrete-event simulator."""

import pytest

from repro.platform import Cluster, NetworkModel, NodeType
from repro.runtime import (
    DataRegistry,
    PerfModel,
    Placement,
    Simulator,
    TaskGraph,
)

# A deliberately simple node type: 1 CPU slot of 1 GFlop/s, no GPU, so a
# task of F flops runs in exactly F nanoseconds-per-flop... i.e. F / 1e9 s.
UNIT = NodeType(
    name="unit", site="SD", category="S", cpu_desc="", gpu_desc="",
    cpu_gflops=1.0, gpus=0, gpu_gflops=0.0, nic_gbps=8.0, memory_gb=1.0,
    cpu_slots=1,
)

GPU_NODE = NodeType(
    name="gnode", site="SD", category="L", cpu_desc="", gpu_desc="g",
    cpu_gflops=1.0, gpus=1, gpu_gflops=10.0, nic_gbps=8.0, memory_gb=1.0,
    cpu_slots=1,
)

# Exact model: no overhead, unit efficiency everywhere.
PM = PerfModel(
    efficiency={
        ("t", "cpu"): 1.0, ("t", "gpu"): 1.0,
        ("c", "cpu"): 1.0,
    },
    overhead_s=0.0,
)

# Zero-latency, 1 GB/s network (nic 8 Gbps at efficiency 1.0).
NET = NetworkModel(latency_s=0.0, backbone_gbps=None, efficiency=1.0)


def make_cluster(n_unit=2, n_gpu=0):
    comp = []
    if n_gpu:
        comp.append((GPU_NODE, n_gpu))
    if n_unit:
        comp.append((UNIT, n_unit))
    return Cluster(comp, network=NET)


class TestSequentialExecution:
    def test_single_task_duration(self):
        cluster = make_cluster(1)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 0, home=0)
        g.submit("t", "p", 2e9, writes=[a])
        res = Simulator(cluster, PM).run(g)
        assert res.makespan == pytest.approx(2.0)

    def test_dependent_tasks_serialize(self):
        cluster = make_cluster(1)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 0, home=0)
        g.submit("t", "p", 1e9, writes=[a])
        g.submit("t", "p", 1e9, reads=[a], writes=[a])
        res = Simulator(cluster, PM).run(g)
        assert res.makespan == pytest.approx(2.0)

    def test_independent_tasks_parallel_across_nodes(self):
        cluster = make_cluster(2)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 0, home=0)
        b = g.registry.register("b", 0, home=1)
        g.submit("t", "p", 1e9, writes=[a])
        g.submit("t", "p", 1e9, writes=[b])
        res = Simulator(cluster, PM).run(g)
        assert res.makespan == pytest.approx(1.0)

    def test_single_worker_serializes_independent_tasks(self):
        cluster = make_cluster(1)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 0, home=0)
        b = g.registry.register("b", 0, home=0)
        g.submit("t", "p", 1e9, writes=[a])
        g.submit("t", "p", 1e9, writes=[b])
        res = Simulator(cluster, PM).run(g)
        assert res.makespan == pytest.approx(2.0)

    def test_empty_graph(self):
        res = Simulator(make_cluster(1), PM).run(TaskGraph(DataRegistry()))
        assert res.makespan == 0.0
        assert res.task_count == 0


class TestWorkerSelection:
    def test_gpu_preferred_when_faster(self):
        cluster = make_cluster(0, n_gpu=1)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 0, home=0)
        g.submit("t", "p", 10e9, writes=[a])
        res = Simulator(cluster, PM, trace=True).run(g)
        assert res.makespan == pytest.approx(1.0)  # 10 GF on the 10 GF/s GPU
        assert res.task_records[0].worker_kind == "gpu"

    def test_cpu_only_placement_respected(self):
        cluster = make_cluster(0, n_gpu=1)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 0, home=0)
        g.submit("c", "p", 10e9, writes=[a], placement=Placement.CPU_ONLY)
        res = Simulator(cluster, PM, trace=True).run(g)
        assert res.makespan == pytest.approx(10.0)  # forced onto 1 GF/s CPU
        assert res.task_records[0].worker_kind == "cpu"

    def test_no_eligible_worker_raises(self):
        cluster = make_cluster(1)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 0, home=0)
        g.submit("t", "p", 1.0, writes=[a], placement=Placement.GPU_ONLY)
        with pytest.raises(RuntimeError, match="can run on no worker"):
            Simulator(cluster, PM).run(g)


class TestCommunication:
    def test_remote_read_costs_transfer(self):
        cluster = make_cluster(2)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 1e9, home=0)  # 1 GB at 1 GB/s = 1 s
        g.submit("t", "p", 1e9, writes=[a])        # runs on node 0, 1 s
        b = g.registry.register("b", 0, home=1)
        g.submit("t", "p", 1e9, reads=[a], writes=[b])  # node 1: fetch + 1 s
        res = Simulator(cluster, PM).run(g)
        assert res.makespan == pytest.approx(3.0)
        assert res.transfer_count == 1
        assert res.comm_bytes == pytest.approx(1e9)

    def test_replica_cached_no_second_transfer(self):
        cluster = make_cluster(2)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 1e9, home=0)
        g.submit("t", "p", 1e9, writes=[a])
        b = g.registry.register("b", 0, home=1)
        c = g.registry.register("c", 0, home=1)
        g.submit("t", "p", 1e9, reads=[a], writes=[b])
        g.submit("t", "p", 1e9, reads=[a], writes=[c])
        res = Simulator(cluster, PM).run(g)
        assert res.transfer_count == 1

    def test_write_invalidates_replicas(self):
        cluster = make_cluster(2)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 1e9, home=0)
        aux = g.registry.register("aux", 0, home=1)
        g.submit("t", "p", 1e9, writes=[a])
        g.submit("t", "p", 1e9, reads=[a], writes=[aux])   # replica on node 1
        g.submit("t", "p", 1e9, reads=[a], writes=[a])     # rewrite on node 0
        g.submit("t", "p", 1e9, reads=[a], writes=[aux])   # must re-fetch
        res = Simulator(cluster, PM).run(g)
        assert res.transfer_count == 2

    def test_local_read_is_free(self):
        cluster = make_cluster(2)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 1e9, home=0)
        g.submit("t", "p", 1e9, writes=[a])
        g.submit("t", "p", 1e9, reads=[a], writes=[a])
        res = Simulator(cluster, PM).run(g)
        assert res.transfer_count == 0

    def test_unwritten_input_fetched_from_home(self):
        cluster = make_cluster(2)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 1e9, home=0)
        b = g.registry.register("b", 0, home=1)
        g.submit("t", "p", 1e9, reads=[a], writes=[b])
        res = Simulator(cluster, PM).run(g)
        assert res.makespan == pytest.approx(2.0)
        assert res.transfer_count == 1

    def test_nic_contention_serializes_sends(self):
        """With a single-stream NIC, two pulls from node 0 serialize."""
        net1 = NetworkModel(latency_s=0.0, backbone_gbps=None, efficiency=1.0,
                            streams=1)
        cluster = Cluster([(UNIT, 3)], network=net1)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 1e9, home=0)
        b = g.registry.register("b", 0, home=1)
        c = g.registry.register("c", 0, home=2)
        g.submit("t", "p", 0.0, reads=[a], writes=[b])
        g.submit("t", "p", 0.0, reads=[a], writes=[c])
        res = Simulator(cluster, PM).run(g)
        # Sends serialize on node 0's NIC: second transfer ends at t=2.
        assert res.makespan == pytest.approx(2.0)

    def test_multiple_streams_parallelize_sends(self):
        """With 2 NIC streams the same two pulls complete concurrently."""
        net2 = NetworkModel(latency_s=0.0, backbone_gbps=None, efficiency=1.0,
                            streams=2)
        cluster = Cluster([(UNIT, 3)], network=net2)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 1e9, home=0)
        b = g.registry.register("b", 0, home=1)
        c = g.registry.register("c", 0, home=2)
        g.submit("t", "p", 0.0, reads=[a], writes=[b])
        g.submit("t", "p", 0.0, reads=[a], writes=[c])
        res = Simulator(cluster, PM).run(g)
        assert res.makespan == pytest.approx(1.0)


class TestResultBookkeeping:
    def test_phase_spans(self):
        cluster = make_cluster(1)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 0, home=0)
        g.submit("t", "gen", 1e9, writes=[a])
        g.submit("t", "fact", 1e9, reads=[a], writes=[a])
        res = Simulator(cluster, PM).run(g)
        assert res.phase_spans["gen"] == pytest.approx((0.0, 1.0))
        assert res.phase_spans["fact"] == pytest.approx((1.0, 2.0))
        assert res.phase_duration("fact") == pytest.approx(1.0)

    def test_phase_duration_unknown_phase(self):
        cluster = make_cluster(1)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 0, home=0)
        g.submit("t", "gen", 1e9, writes=[a])
        res = Simulator(cluster, PM).run(g)
        with pytest.raises(KeyError):
            res.phase_duration("nope")

    def test_trace_records_only_when_enabled(self):
        cluster = make_cluster(1)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 0, home=0)
        g.submit("t", "p", 1e9, writes=[a])
        assert Simulator(cluster, PM).run(g).task_records == []
        assert len(Simulator(cluster, PM, trace=True).run(g).task_records) == 1

    def test_priority_breaks_ready_ties(self):
        cluster = make_cluster(1)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 0, home=0)
        b = g.registry.register("b", 0, home=0)
        g.submit("t", "p", 1e9, writes=[a], priority=0)
        g.submit("t", "p", 1e9, writes=[b], priority=10)
        res = Simulator(cluster, PM, trace=True).run(g)
        first = res.task_records[0]
        assert first.tid == 1  # higher priority scheduled first
