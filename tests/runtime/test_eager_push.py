"""Tests for eager data pushes and tree broadcasts in the simulator."""

import pytest

from repro.platform import Cluster, NetworkModel, NodeType
from repro.runtime import DataRegistry, PerfModel, Simulator, TaskGraph

UNIT = NodeType(
    name="unit", site="SD", category="S", cpu_desc="", gpu_desc="",
    cpu_gflops=1.0, gpus=0, gpu_gflops=0.0, nic_gbps=8.0, memory_gb=1.0,
    cpu_slots=1,
)
PM = PerfModel(efficiency={("t", "cpu"): 1.0}, overhead_s=0.0)
NET1 = NetworkModel(latency_s=0.0, backbone_gbps=None, efficiency=1.0, streams=1)


def cluster_of(n):
    return Cluster([(UNIT, n)], network=NET1)


class TestEagerPush:
    def test_transfer_starts_at_write_not_at_use(self):
        """The consumer node computes something else while the transfer is
        in flight: with eager push, the transfer overlaps that work."""
        cluster = cluster_of(2)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 1e9, home=0)      # 1 s transfer
        busy = g.registry.register("busy", 0, home=1)
        out = g.registry.register("out", 0, home=1)
        g.submit("t", "p", 1e9, writes=[a])            # node 0: [0, 1]
        g.submit("t", "p", 1e9, writes=[busy])         # node 1: [0, 1]
        g.submit("t", "p", 1e9, reads=[a, busy], writes=[out])
        res = Simulator(cluster, PM).run(g)
        # Without prefetch: 1 (write) + 1 (transfer) + 1 (consumer) = 3.
        # With eager push the transfer [1, 2] overlaps nothing here, so the
        # consumer runs [2, 3]... but `busy` ran [0, 1] concurrently, so
        # any serialization of busy-then-fetch would give 3.0 as well;
        # check the real benefit below with an initially-resident block.
        assert res.makespan == pytest.approx(3.0)

    def test_initial_data_pushed_at_time_zero(self):
        """Initially-resident remote inputs start moving at t=0, hiding
        under the consumer's other work."""
        cluster = cluster_of(2)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 1e9, home=0)      # unwritten input
        busy = g.registry.register("busy", 0, home=1)
        out = g.registry.register("out", 0, home=1)
        g.submit("t", "p", 1e9, writes=[busy])         # node 1: [0, 1]
        g.submit("t", "p", 1e9, reads=[a, busy], writes=[out])
        res = Simulator(cluster, PM).run(g)
        # Transfer [0, 1] overlaps the busy task [0, 1]; consumer [1, 2].
        assert res.makespan == pytest.approx(2.0)

    def test_tree_broadcast_relays_from_consumers(self):
        """Broadcasting one block to 4 consumers over single-stream NICs
        takes ~log2 rounds, not 4 sequential sends from the writer."""
        cluster = cluster_of(5)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 1e9, home=0)
        g.submit("t", "p", 0.0, writes=[a])
        outs = [g.registry.register(f"o{i}", 0, home=i) for i in range(1, 5)]
        for i, out in enumerate(outs):
            g.submit("t", "p", 0.0, reads=[a], writes=[out])
        res = Simulator(cluster, PM, trace=True).run(g)
        # Sequential unicast would finish at t=4; a greedy relay tree
        # finishes by t=3 (0->1; 0->2 & 1->3; then one more).
        assert res.makespan <= 3.0 + 1e-9
        # At least one transfer originates from a non-writer node.
        sources = {t.src for t in res.transfer_records}
        assert sources - {0}

    def test_push_respects_versions(self):
        """A consumer of version 2 never receives version 1's copy."""
        cluster = cluster_of(3)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 1e9, home=0)
        o1 = g.registry.register("o1", 0, home=1)
        o2 = g.registry.register("o2", 0, home=2)
        g.submit("t", "p", 1e9, writes=[a])               # v1 on node 0
        g.submit("t", "p", 1e9, reads=[a], writes=[o1])   # node 1 reads v1
        g.submit("t", "p", 1e9, reads=[a], writes=[a])    # v2 on node 0
        g.submit("t", "p", 1e9, reads=[a], writes=[o2])   # node 2 reads v2
        res = Simulator(cluster, PM, trace=True).run(g)
        # Node 2's copy must arrive after v2 is produced.
        v2_done = [r for r in res.task_records if r.tid == 2][0].end
        arrival = [t for t in res.transfer_records if t.dst == 2][0]
        assert arrival.start >= v2_done - 1e-9

    def test_comm_stats_accumulate(self):
        cluster = cluster_of(3)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 5e8, home=0)
        o1 = g.registry.register("o1", 0, home=1)
        o2 = g.registry.register("o2", 0, home=2)
        g.submit("t", "p", 1e9, writes=[a])
        g.submit("t", "p", 1e9, reads=[a], writes=[o1])
        g.submit("t", "p", 1e9, reads=[a], writes=[o2])
        res = Simulator(cluster, PM).run(g)
        assert res.transfer_count == 2
        assert res.comm_bytes == pytest.approx(1e9)
        assert res.comm_time == pytest.approx(1.0)
