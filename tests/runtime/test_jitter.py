"""Tests for per-task duration jitter (outlier tasks, Section II)."""

import pytest

from repro.platform import Cluster, NetworkModel, NodeType
from repro.runtime import DataRegistry, PerfModel, Simulator, TaskGraph

UNIT = NodeType(
    name="unit", site="SD", category="S", cpu_desc="", gpu_desc="",
    cpu_gflops=1.0, gpus=0, gpu_gflops=0.0, nic_gbps=8.0, memory_gb=1.0,
    cpu_slots=1,
)
PM = PerfModel(efficiency={("t", "cpu"): 1.0}, overhead_s=0.0)
NET = NetworkModel(latency_s=0.0, efficiency=1.0)


def build_graph():
    g = TaskGraph(DataRegistry())
    a = g.registry.register("a", 0, home=0)
    for _ in range(10):
        g.submit("t", "p", 1e9, reads=[a], writes=[a])
    return g


@pytest.fixture
def cluster():
    return Cluster([(UNIT, 1)], network=NET)


class TestJitter:
    def test_zero_jitter_deterministic_baseline(self, cluster):
        m = Simulator(cluster, PM).run(build_graph()).makespan
        assert m == pytest.approx(10.0)

    def test_jitter_changes_makespan(self, cluster):
        m0 = Simulator(cluster, PM).run(build_graph()).makespan
        m1 = Simulator(cluster, PM, jitter_sd=0.2, seed=1).run(build_graph()).makespan
        assert m1 != pytest.approx(m0)

    def test_jitter_reproducible_with_seed(self, cluster):
        m1 = Simulator(cluster, PM, jitter_sd=0.2, seed=7).run(build_graph()).makespan
        m2 = Simulator(cluster, PM, jitter_sd=0.2, seed=7).run(build_graph()).makespan
        assert m1 == pytest.approx(m2)

    def test_different_seeds_differ(self, cluster):
        m1 = Simulator(cluster, PM, jitter_sd=0.2, seed=1).run(build_graph()).makespan
        m2 = Simulator(cluster, PM, jitter_sd=0.2, seed=2).run(build_graph()).makespan
        assert m1 != pytest.approx(m2)

    def test_durations_never_negative(self, cluster):
        """Even huge jitter is floored at 10% of the nominal duration."""
        res = Simulator(
            cluster, PM, jitter_sd=5.0, seed=3, trace=True
        ).run(build_graph())
        for rec in res.task_records:
            assert rec.end - rec.start >= 0.1 - 1e-9

    def test_negative_sd_rejected(self, cluster):
        with pytest.raises(ValueError):
            Simulator(cluster, PM, jitter_sd=-0.1)
