"""Unit tests for the kernel performance model."""

import pytest

from repro.runtime import PerfModel, Placement, Task


def task(name="gemm", placement=Placement.ANY, flops=1e9):
    return Task(
        tid=0, name=name, phase="p", flops=flops, node=0, placement=placement
    )


class TestPerfModel:
    def test_duration_formula(self):
        pm = PerfModel(efficiency={("gemm", "gpu"): 0.5}, overhead_s=0.1)
        # 1e9 flops at 2 GFlop/s * 0.5 eff = 1 s, plus 0.1 s overhead.
        assert pm.duration(task(), "gpu", 2.0) == pytest.approx(1.1)

    def test_default_gemm_runs_on_both(self):
        pm = PerfModel()
        assert pm.can_run(task("gemm"), "cpu")
        assert pm.can_run(task("gemm"), "gpu")

    def test_generation_kernel_cpu_only(self):
        pm = PerfModel()
        assert pm.can_run(task("dcmg"), "cpu")
        assert not pm.can_run(task("dcmg"), "gpu")

    def test_placement_restriction(self):
        pm = PerfModel()
        t = task("gemm", placement=Placement.CPU_ONLY)
        assert not pm.can_run(t, "gpu")
        assert pm.can_run(t, "cpu")

    def test_gpu_only_placement(self):
        pm = PerfModel()
        t = task("gemm", placement=Placement.GPU_ONLY)
        assert pm.can_run(t, "gpu")
        assert not pm.can_run(t, "cpu")

    def test_duration_rejects_impossible(self):
        pm = PerfModel()
        with pytest.raises(ValueError):
            pm.duration(task("dcmg"), "gpu", 1.0)

    def test_duration_rejects_bad_rate(self):
        pm = PerfModel()
        with pytest.raises(ValueError):
            pm.duration(task("gemm"), "cpu", 0.0)

    def test_gemm_gpu_beats_cpu_at_equal_rate(self):
        pm = PerfModel(overhead_s=0.0)
        cpu = pm.duration(task("gemm"), "cpu", 100.0)
        gpu = pm.duration(task("gemm"), "gpu", 100.0)
        assert gpu < cpu

    def test_best_rate_picks_fastest_resource(self):
        pm = PerfModel()
        # GPU dominates for gemm.
        assert pm.best_rate("gemm", 100.0, 1000.0) == pytest.approx(1000.0)
        # potrf is GPU-inefficient: CPU wins here.
        assert pm.best_rate("potrf", 100.0, 200.0) == pytest.approx(70.0)

    def test_best_rate_cpu_only_kernel(self):
        pm = PerfModel()
        assert pm.best_rate("dcmg", 100.0, 1000.0) == pytest.approx(100.0)

    def test_best_rate_unknown_kernel(self):
        pm = PerfModel()
        with pytest.raises(ValueError):
            pm.best_rate("nope", 1.0, 1.0)

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            Task(tid=0, name="t", phase="p", flops=-1.0, node=0)
