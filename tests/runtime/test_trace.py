"""Unit tests for trace analysis (Figure 1 substrate)."""

import numpy as np
import pytest

from repro.platform import Cluster, NetworkModel, NodeType
from repro.runtime import (
    DataRegistry,
    PerfModel,
    Simulator,
    TaskGraph,
    phase_rows,
    render_ascii,
    utilization_timeline,
)

UNIT = NodeType(
    name="unit", site="SD", category="S", cpu_desc="", gpu_desc="",
    cpu_gflops=1.0, gpus=0, gpu_gflops=0.0, nic_gbps=8.0, memory_gb=1.0,
    cpu_slots=1,
)
PM = PerfModel(efficiency={("t", "cpu"): 1.0}, overhead_s=0.0)
NET = NetworkModel(latency_s=0.0, efficiency=1.0)


@pytest.fixture
def traced_result():
    cluster = Cluster([(UNIT, 2)], network=NET)
    g = TaskGraph(DataRegistry())
    a = g.registry.register("a", 0, home=0)
    b = g.registry.register("b", 0, home=1)
    g.submit("t", "generation", 1e9, writes=[a])
    g.submit("t", "generation", 1e9, writes=[b])
    g.submit("t", "factorization", 1e9, reads=[a], writes=[a])
    res = Simulator(cluster, PM, trace=True).run(g)
    return cluster, res


class TestUtilizationTimeline:
    def test_shape(self, traced_result):
        cluster, res = traced_result
        tl = utilization_timeline(res, cluster, nbins=10)
        assert tl.utilization.shape == (2, 2, 10)
        assert len(tl.bins) == 11

    def test_busy_fraction_bounded(self, traced_result):
        cluster, res = traced_result
        tl = utilization_timeline(res, cluster, nbins=10)
        assert np.all(tl.utilization >= 0.0)
        assert np.all(tl.utilization <= 1.0 + 1e-9)

    def test_total_busy_time_conserved(self, traced_result):
        """Sum over bins of (busy fraction * bin width * workers) equals
        the total task execution time on each node."""
        cluster, res = traced_result
        tl = utilization_timeline(res, cluster, nbins=16)
        width = tl.bins[1] - tl.bins[0]
        for node in range(2):
            expected = sum(
                r.end - r.start for r in res.task_records if r.node == node
            )
            measured = tl.utilization[node].sum() * width  # 1 worker per node
            assert measured == pytest.approx(expected, rel=1e-9)

    def test_node0_busy_both_phases(self, traced_result):
        cluster, res = traced_result
        tl = utilization_timeline(res, cluster, nbins=4)
        # Node 0 runs generation in [0,1) and factorization in [1,2).
        gen = tl.phases.index("generation")
        fact = tl.phases.index("factorization")
        assert tl.utilization[0, gen, 0] == pytest.approx(1.0)
        assert tl.utilization[0, fact, -1] == pytest.approx(1.0)

    def test_requires_trace(self, traced_result):
        cluster, _ = traced_result
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 0, home=0)
        g.submit("t", "p", 1e9, writes=[a])
        res = Simulator(cluster, PM).run(g)  # no trace
        with pytest.raises(ValueError, match="trace"):
            utilization_timeline(res, cluster)

    def test_bad_nbins(self, traced_result):
        cluster, res = traced_result
        with pytest.raises(ValueError):
            utilization_timeline(res, cluster, nbins=0)


@pytest.fixture
def cross_node_result():
    """One cross-node read: a (home 0) feeds a task running on node 1."""
    cluster = Cluster([(UNIT, 2)], network=NET)
    g = TaskGraph(DataRegistry())
    a = g.registry.register("a", 1e9, home=0)
    b = g.registry.register("b", 8.0, home=1)
    g.submit("t", "generation", 1e9, writes=[a])
    g.submit("t", "factorization", 1e9, reads=[a], writes=[b])
    res = Simulator(cluster, PM, trace=True).run(g)
    return cluster, res


class TestTransferLanes:
    def test_shape_and_bounds(self, cross_node_result):
        cluster, res = cross_node_result
        assert res.transfer_records  # the fixture must actually transfer
        tl = utilization_timeline(res, cluster, nbins=12)
        assert tl.transfers is not None
        assert tl.transfers.shape == (2, 2, 12)
        assert np.all(tl.transfers >= 0.0)
        assert np.all(tl.transfers <= 1.0 + 1e-9)

    def test_send_and_recv_sides(self, cross_node_result):
        cluster, res = cross_node_result
        tl = utilization_timeline(res, cluster, nbins=12)
        assert tl.transfers[0, 0].sum() > 0.0  # node 0 sends
        assert tl.transfers[1, 1].sum() > 0.0  # node 1 receives
        assert tl.transfers[0, 1].sum() == 0.0  # nothing arrives at node 0
        assert tl.transfers[1, 0].sum() == 0.0  # node 1 sends nothing

    def test_transfer_time_conserved(self, cross_node_result):
        cluster, res = cross_node_result
        tl = utilization_timeline(res, cluster, nbins=16)
        width = tl.bins[1] - tl.bins[0]
        streams = cluster.network.streams
        total = sum(r.end - r.start for r in res.transfer_records)
        assert tl.transfers[0, 0].sum() * width * streams == (
            pytest.approx(total, rel=1e-9)
        )
        assert tl.node_comm(1).sum() * width * streams * 2.0 == (
            pytest.approx(total, rel=1e-9)
        )

    def test_opt_out(self, cross_node_result):
        cluster, res = cross_node_result
        tl = utilization_timeline(res, cluster, nbins=8,
                                  include_transfers=False)
        assert tl.transfers is None
        with pytest.raises(ValueError, match="transfer"):
            tl.node_comm(0)


class TestWorkerField:
    def test_simulator_records_lane_indices(self, traced_result):
        _, res = traced_result
        for rec in res.task_records:
            assert rec.worker == 0  # single-slot nodes: only lane 0

    def test_concurrent_tasks_get_distinct_lanes(self):
        duo = NodeType(
            name="duo", site="SD", category="S", cpu_desc="", gpu_desc="",
            cpu_gflops=2.0, gpus=0, gpu_gflops=0.0, nic_gbps=8.0,
            memory_gb=1.0, cpu_slots=2,
        )
        cluster = Cluster([(duo, 1)], network=NET)
        g = TaskGraph(DataRegistry())
        for i in range(2):
            h = g.registry.register(f"h{i}", 8.0, home=0)
            g.submit("t", "generation", 1e9, writes=[h])
        res = Simulator(cluster, PM, trace=True).run(g)
        assert sorted(r.worker for r in res.task_records) == [0, 1]


class TestRendering:
    def test_ascii_contains_rows_and_legend(self, traced_result):
        cluster, res = traced_result
        tl = utilization_timeline(res, cluster, nbins=20)
        art = render_ascii(tl, cluster)
        assert "unit-0" in art
        assert "legend" in art
        assert "G" in art or "g" in art  # generation glyph somewhere

    def test_phase_rows_sorted_by_time(self, traced_result):
        _, res = traced_result
        rows = phase_rows(res)
        assert [r[0] for r in rows] == ["generation", "factorization"]
        assert rows[0][3] == pytest.approx(1.0)
