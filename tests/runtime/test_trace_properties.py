"""Property tests for the utilization timeline (stdlib ``random`` only).

Random-but-valid schedules are generated directly as trace records: each
worker lane (and each NIC stream slot) holds non-overlapping intervals,
so the binned utilization must stay a true fraction in [0, 1] no matter
how the intervals land on bin edges.  A committed golden pins the
``render_ascii`` art; regenerate after an intended change::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/runtime/test_trace_properties.py
"""

import os
import random
from pathlib import Path

import numpy as np
import pytest

from repro.platform import Cluster, NetworkModel, NodeType
from repro.runtime import (
    DataRegistry,
    PerfModel,
    Simulator,
    TaskGraph,
    render_ascii,
    utilization_timeline,
)
from repro.runtime.simulator import (
    SimulationResult,
    TaskRecord,
    TransferRecord,
)

GOLDEN = Path(__file__).parent.parent / "goldens" / "render_ascii_small.txt"

PHASES = ("generation", "factorization", "solve")

DUO = NodeType(
    name="duo", site="SD", category="S", cpu_desc="", gpu_desc="",
    cpu_gflops=2.0, gpus=0, gpu_gflops=0.0, nic_gbps=8.0, memory_gb=1.0,
    cpu_slots=2,
)
UNIT = NodeType(
    name="unit", site="SD", category="S", cpu_desc="", gpu_desc="",
    cpu_gflops=1.0, gpus=0, gpu_gflops=0.0, nic_gbps=8.0, memory_gb=1.0,
    cpu_slots=1,
)
PM = PerfModel(efficiency={("t", "cpu"): 1.0}, overhead_s=0.0)
NET = NetworkModel(latency_s=0.0, efficiency=1.0, streams=2)


def synthetic_result(rng, n_nodes=2):
    """A random valid schedule: per-lane and per-stream-slot intervals
    never overlap, exactly like a real simulator trace."""
    tasks = []
    tid = 0
    for node in range(n_nodes):
        for lane in range(DUO.cpu_slots):
            t = 0.0
            for _ in range(rng.randrange(1, 6)):
                start = t + rng.random() * 0.5
                end = start + 0.1 + rng.random()
                tasks.append(TaskRecord(tid, "t", rng.choice(PHASES), node,
                                        "cpu", start, end, worker=lane))
                tid += 1
                t = end
    transfers = []
    hid = 0
    for slot in range(NET.streams):
        t = 0.0
        for _ in range(rng.randrange(0, 4)):
            start = t + rng.random() * 0.5
            end = start + 0.05 + rng.random() * 0.5
            transfers.append(TransferRecord(hid, 0, 1, start, end,
                                            nbytes=8.0))
            hid += 1
            t = end
    makespan = max(r.end for r in tasks + transfers)
    spans = {}
    for rec in tasks:
        lo, hi = spans.get(rec.phase, (rec.start, rec.end))
        spans[rec.phase] = (min(lo, rec.start), max(hi, rec.end))
    return SimulationResult(
        makespan=makespan,
        task_count=len(tasks),
        transfer_count=len(transfers),
        comm_bytes=sum(r.nbytes for r in transfers),
        comm_time=sum(r.end - r.start for r in transfers),
        phase_spans=spans,
        task_records=tasks,
        transfer_records=transfers,
    )


class TestUtilizationProperties:
    @pytest.mark.parametrize("seed", range(25))
    def test_fractions_and_shapes(self, seed):
        rng = random.Random(seed)
        cluster = Cluster([(DUO, 2)], network=NET)
        res = synthetic_result(rng)
        nbins = rng.randrange(1, 60)
        tl = utilization_timeline(res, cluster, nbins=nbins)
        assert len(tl.bins) == nbins + 1
        assert tl.utilization.shape == (2, len(tl.phases), nbins)
        assert np.all(tl.utilization >= 0.0)
        assert np.all(tl.utilization <= 1.0 + 1e-9)
        assert tl.transfers.shape == (2, 2, nbins)
        assert np.all(tl.transfers >= 0.0)
        assert np.all(tl.transfers <= 1.0 + 1e-9)

    @pytest.mark.parametrize("seed", range(10))
    def test_busy_time_conserved(self, seed):
        rng = random.Random(100 + seed)
        cluster = Cluster([(DUO, 2)], network=NET)
        res = synthetic_result(rng)
        tl = utilization_timeline(res, cluster, nbins=rng.randrange(2, 40))
        width = tl.bins[1] - tl.bins[0]
        for node in range(2):
            expected = sum(r.end - r.start for r in res.task_records
                           if r.node == node)
            measured = tl.utilization[node].sum() * width * DUO.cpu_slots
            assert measured == pytest.approx(expected, rel=1e-9)
        sent = sum(r.end - r.start for r in res.transfer_records)
        assert tl.transfers[0, 0].sum() * width * NET.streams == (
            pytest.approx(sent, rel=1e-9, abs=1e-12)
        )
        assert tl.transfers[1, 1].sum() * width * NET.streams == (
            pytest.approx(sent, rel=1e-9, abs=1e-12)
        )

    @pytest.mark.parametrize("seed", range(10))
    def test_phase_order_stable_across_binning(self, seed):
        rng = random.Random(200 + seed)
        cluster = Cluster([(DUO, 2)], network=NET)
        res = synthetic_result(rng)
        coarse = utilization_timeline(res, cluster, nbins=3)
        fine = utilization_timeline(res, cluster, nbins=97)
        assert coarse.phases == fine.phases
        first_seen = []
        for rec in res.task_records:
            if rec.phase not in first_seen:
                first_seen.append(rec.phase)
        assert coarse.phases == first_seen


class TestAsciiGolden:
    @pytest.fixture()
    def small_run(self):
        cluster = Cluster([(UNIT, 2)], network=NET)
        g = TaskGraph(DataRegistry())
        a = g.registry.register("a", 4e9, home=0)
        b = g.registry.register("b", 8.0, home=1)
        g.submit("t", "generation", 1e9, writes=[a])
        g.submit("t", "generation", 2e9, writes=[b])
        g.submit("t", "factorization", 1e9, reads=[a], writes=[b])
        res = Simulator(cluster, PM, trace=True).run(g)
        return cluster, res

    def test_render_ascii_matches_golden(self, small_run):
        cluster, res = small_run
        tl = utilization_timeline(res, cluster, nbins=24)
        art = render_ascii(tl, cluster, show_transfers=True) + "\n"
        if os.environ.get("REPRO_REGEN_GOLDENS"):
            GOLDEN.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN.write_text(art)
            pytest.skip(f"regenerated {GOLDEN}")
        assert GOLDEN.exists(), (
            f"golden missing; run with REPRO_REGEN_GOLDENS=1 to create "
            f"{GOLDEN}"
        )
        assert art == GOLDEN.read_text()

    def test_comm_rows_toggle(self, small_run):
        cluster, res = small_run
        tl = utilization_timeline(res, cluster, nbins=24)
        assert "~comm" in render_ascii(tl, cluster, show_transfers=True)
        assert "~comm" not in render_ascii(tl, cluster)
        bare = utilization_timeline(res, cluster, nbins=24,
                                    include_transfers=False)
        assert "~comm" not in render_ascii(bare, cluster,
                                           show_transfers=True)
