"""Unit tests for STF dependency inference."""

import pytest

from repro.runtime import DataRegistry, Placement, TaskGraph, chain


@pytest.fixture
def graph():
    return TaskGraph(DataRegistry())


def preds_of(graph, tid):
    return set(graph.predecessors()[tid])


class TestSTFDependencies:
    def test_read_after_write(self, graph):
        a = graph.registry.register("a", 8, home=0)
        w = graph.submit("w", "p", 1.0, writes=[a])
        r = graph.submit("r", "p", 1.0, reads=[a])
        assert preds_of(graph, r.tid) == {w.tid}

    def test_independent_readers_not_ordered(self, graph):
        a = graph.registry.register("a", 8, home=0)
        graph.submit("w", "p", 1.0, writes=[a])
        r1 = graph.submit("r1", "p", 1.0, reads=[a])
        r2 = graph.submit("r2", "p", 1.0, reads=[a])
        assert r1.tid not in preds_of(graph, r2.tid)
        assert r2.tid not in preds_of(graph, r1.tid)

    def test_write_after_read(self, graph):
        a = graph.registry.register("a", 8, home=0)
        w1 = graph.submit("w1", "p", 1.0, writes=[a])
        r = graph.submit("r", "p", 1.0, reads=[a])
        w2 = graph.submit("w2", "p", 1.0, writes=[a])
        assert preds_of(graph, w2.tid) == {w1.tid, r.tid}

    def test_write_after_write(self, graph):
        a = graph.registry.register("a", 8, home=0)
        w1 = graph.submit("w1", "p", 1.0, writes=[a])
        w2 = graph.submit("w2", "p", 1.0, writes=[a])
        assert preds_of(graph, w2.tid) == {w1.tid}

    def test_rw_task_single_dep(self, graph):
        """A read-modify-write task (handle in reads and writes) depends on
        the previous writer exactly once."""
        a = graph.registry.register("a", 8, home=0)
        w = graph.submit("w", "p", 1.0, writes=[a])
        rw = graph.submit("rw", "p", 1.0, reads=[a], writes=[a])
        assert preds_of(graph, rw.tid) == {w.tid}
        assert graph.indegree[rw.tid] == 1

    def test_reader_chain_resets_after_write(self, graph):
        a = graph.registry.register("a", 8, home=0)
        graph.submit("w1", "p", 1.0, writes=[a])
        graph.submit("r1", "p", 1.0, reads=[a])
        w2 = graph.submit("w2", "p", 1.0, writes=[a])
        r2 = graph.submit("r2", "p", 1.0, reads=[a])
        assert preds_of(graph, r2.tid) == {w2.tid}

    def test_unwritten_handle_read_is_root(self, graph):
        a = graph.registry.register("a", 8, home=0)
        r = graph.submit("r", "p", 1.0, reads=[a])
        assert graph.indegree[r.tid] == 0


class TestOwnerComputes:
    def test_node_is_home_of_written_handle(self, graph):
        a = graph.registry.register("a", 8, home=3)
        t = graph.submit("w", "p", 1.0, writes=[a])
        assert t.node == 3

    def test_node_is_home_of_read_when_no_write(self, graph):
        a = graph.registry.register("a", 8, home=2)
        t = graph.submit("r", "p", 1.0, reads=[a])
        assert t.node == 2

    def test_explicit_node_overrides(self, graph):
        a = graph.registry.register("a", 8, home=2)
        t = graph.submit("r", "p", 1.0, reads=[a], node=5)
        assert t.node == 5

    def test_migration_moves_future_tasks(self, graph):
        a = graph.registry.register("a", 8, home=0)
        t1 = graph.submit("w", "p", 1.0, writes=[a])
        graph.registry.migrate(a, 7)
        t2 = graph.submit("w", "p", 1.0, writes=[a])
        assert (t1.node, t2.node) == (0, 7)

    def test_no_data_no_node_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.submit("t", "p", 1.0)


class TestGraphQueries:
    def test_topological_order_valid(self, graph):
        a = graph.registry.register("a", 8, home=0)
        b = graph.registry.register("b", 8, home=0)
        t1 = graph.submit("t1", "p", 1.0, writes=[a])
        t2 = graph.submit("t2", "p", 1.0, reads=[a], writes=[b])
        t3 = graph.submit("t3", "p", 1.0, reads=[a, b])
        order = graph.topological_order()
        pos = {tid: i for i, tid in enumerate(order)}
        assert pos[t1.tid] < pos[t2.tid] < pos[t3.tid]

    def test_cycle_detection(self, graph):
        a = graph.registry.register("a", 8, home=0)
        t1 = graph.submit("t1", "p", 1.0, writes=[a])
        t2 = graph.submit("t2", "p", 1.0, reads=[a])
        # Manually corrupt the graph with a back edge.
        graph.successors[t2.tid].append(t1.tid)
        graph.indegree[t1.tid] += 1
        with pytest.raises(ValueError, match="cycle"):
            graph.validate_acyclic()

    def test_total_flops_per_phase(self, graph):
        a = graph.registry.register("a", 8, home=0)
        graph.submit("t", "gen", 5.0, writes=[a])
        graph.submit("t", "fact", 7.0, reads=[a])
        assert graph.total_flops() == 12.0
        assert graph.total_flops("gen") == 5.0

    def test_counts_by_name(self, graph):
        a = graph.registry.register("a", 8, home=0)
        graph.submit("x", "p", 1.0, writes=[a])
        graph.submit("x", "p", 1.0, reads=[a])
        graph.submit("y", "p", 1.0, reads=[a])
        assert graph.counts_by_name() == {"x": 2, "y": 1}

    def test_chain_utility(self, graph):
        a = graph.registry.register("a", 8, home=0)
        b = graph.registry.register("b", 8, home=0)
        t1 = graph.submit("t1", "p", 1.0, writes=[a])
        t2 = graph.submit("t2", "p", 1.0, writes=[b])
        assert graph.indegree[t2.tid] == 0
        chain(graph, [t1.tid, t2.tid])
        assert graph.indegree[t2.tid] == 1

    def test_placement_stored(self, graph):
        a = graph.registry.register("a", 8, home=0)
        t = graph.submit("t", "p", 1.0, writes=[a], placement=Placement.CPU_ONLY)
        assert t.placement is Placement.CPU_ONLY


class TestRegistry:
    def test_ids_dense(self, graph):
        h1 = graph.registry.register("a", 8, home=0)
        h2 = graph.registry.register("b", 8, home=0)
        assert (h1.hid, h2.hid) == (0, 1)

    def test_sizes_and_total(self, graph):
        graph.registry.register("a", 8, home=0)
        graph.registry.register("b", 16, home=0)
        assert graph.registry.sizes() == {0: 8.0, 1: 16.0}
        assert graph.registry.total_bytes() == 24.0

    def test_negative_size_rejected(self, graph):
        with pytest.raises(ValueError):
            graph.registry.register("a", -1, home=0)
