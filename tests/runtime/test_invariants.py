"""Property-based invariants of the discrete-event simulator.

Random task graphs on random small clusters must always satisfy:

* every task runs exactly once, within the makespan;
* dependencies are respected (a task starts no earlier than its
  predecessors finish);
* no worker runs two tasks at once;
* scaling all task costs up never decreases the makespan;
* the makespan is at least the trivial work lower bound.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform import Cluster, NetworkModel, NodeType
from repro.runtime import DataRegistry, PerfModel, Simulator, TaskGraph

PM = PerfModel(efficiency={("t", "cpu"): 1.0, ("t", "gpu"): 1.0}, overhead_s=0.0)
NET = NetworkModel(latency_s=0.0, backbone_gbps=None, efficiency=1.0, streams=1)


def make_node(speed: float, gpus: int, slots: int) -> NodeType:
    return NodeType(
        name=f"n{speed:.0f}g{gpus}", site="SD", category="S",
        cpu_desc="", gpu_desc="g" if gpus else "",
        cpu_gflops=speed, gpus=gpus, gpu_gflops=speed * 2 if gpus else 0.0,
        nic_gbps=8.0, memory_gb=1.0, cpu_slots=slots,
    )


graph_spec = st.lists(
    st.tuples(
        st.floats(min_value=0.1e9, max_value=5e9),   # flops
        st.integers(min_value=0, max_value=5),       # handle to read
        st.integers(min_value=0, max_value=5),       # handle to write
    ),
    min_size=1,
    max_size=25,
)

cluster_spec = st.tuples(
    st.integers(min_value=1, max_value=3),  # node count
    st.integers(min_value=0, max_value=1),  # gpus per node
    st.integers(min_value=1, max_value=2),  # cpu slots
)


def build(spec, cspec):
    n_nodes, gpus, slots = cspec
    cluster = Cluster([(make_node(1.0, gpus, slots), n_nodes)], network=NET)
    graph = TaskGraph(DataRegistry())
    handles = [
        graph.registry.register(f"h{i}", 1e6, home=i % n_nodes) for i in range(6)
    ]
    for flops, r, w in spec:
        graph.submit("t", "p", flops, reads=[handles[r]], writes=[handles[w]])
    return cluster, graph


@settings(max_examples=60, deadline=None)
@given(spec=graph_spec, cspec=cluster_spec)
def test_simulator_invariants(spec, cspec):
    cluster, graph = build(spec, cspec)
    result = Simulator(cluster, PM, trace=True).run(graph)

    records = {r.tid: r for r in result.task_records}
    # 1. Every task ran exactly once, inside [0, makespan].
    assert len(records) == len(graph.tasks)
    for r in records.values():
        assert 0.0 <= r.start <= r.end <= result.makespan + 1e-9

    # 2. Dependencies respected.
    preds = graph.predecessors()
    for tid, plist in enumerate(preds):
        for p in plist:
            assert records[p].end <= records[tid].start + 1e-9

    # 3. Workers never oversubscribed: per (node, kind) at most
    #    (#workers of that kind) overlapping tasks.
    per_slot = defaultdict(list)
    for r in records.values():
        per_slot[(r.node, r.worker_kind)].append((r.start, r.end))
    for (node, kind), intervals in per_slot.items():
        nt = cluster[node].node_type
        capacity = nt.gpus if kind == "gpu" else nt.cpu_slots
        events = sorted(
            [(s, 1) for s, _ in intervals] + [(e, -1) for _, e in intervals],
            key=lambda t: (t[0], t[1]),
        )
        live = 0
        for _, delta in events:
            live += delta
            assert live <= capacity

    # 4. Work lower bound: makespan >= total flops / aggregate speed.
    total_flops = graph.total_flops()
    agg = sum(n.total_gflops for n in cluster) * 1e9
    assert result.makespan >= total_flops / agg - 1e-9


@settings(max_examples=30, deadline=None)
@given(
    spec=graph_spec,
    cspec=cluster_spec,
    factor=st.floats(min_value=1.5, max_value=4.0),
)
def test_makespan_monotone_in_task_cost(spec, cspec, factor):
    cluster, graph = build(spec, cspec)
    base = Simulator(cluster, PM).run(graph).makespan

    scaled_spec = [(f * factor, r, w) for f, r, w in spec]
    cluster2, graph2 = build(scaled_spec, cspec)
    scaled = Simulator(cluster2, PM).run(graph2).makespan
    assert scaled >= base - 1e-9


@settings(max_examples=30, deadline=None)
@given(spec=graph_spec, cspec=cluster_spec)
def test_simulation_deterministic(spec, cspec):
    cluster, graph = build(spec, cspec)
    m1 = Simulator(cluster, PM).run(graph).makespan
    cluster2, graph2 = build(spec, cspec)
    m2 = Simulator(cluster2, PM).run(graph2).makespan
    assert m1 == pytest.approx(m2, rel=1e-12)
