"""Property-based invariants of the discrete-event simulator.

Random task graphs on random small clusters must always satisfy:

* every task runs exactly once, within the makespan;
* dependencies are respected (a task starts no earlier than its
  predecessors finish);
* no worker runs two tasks at once;
* scaling all task costs up never decreases the makespan;
* the makespan is at least the trivial work lower bound.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform import Cluster, NetworkModel, NodeType
from repro.runtime import DataRegistry, PerfModel, Simulator, TaskGraph

PM = PerfModel(efficiency={("t", "cpu"): 1.0, ("t", "gpu"): 1.0}, overhead_s=0.0)
NET = NetworkModel(latency_s=0.0, backbone_gbps=None, efficiency=1.0, streams=1)


def make_node(speed: float, gpus: int, slots: int) -> NodeType:
    return NodeType(
        name=f"n{speed:.0f}g{gpus}", site="SD", category="S",
        cpu_desc="", gpu_desc="g" if gpus else "",
        cpu_gflops=speed, gpus=gpus, gpu_gflops=speed * 2 if gpus else 0.0,
        nic_gbps=8.0, memory_gb=1.0, cpu_slots=slots,
    )


graph_spec = st.lists(
    st.tuples(
        st.floats(min_value=0.1e9, max_value=5e9),   # flops
        st.integers(min_value=0, max_value=5),       # handle to read
        st.integers(min_value=0, max_value=5),       # handle to write
    ),
    min_size=1,
    max_size=25,
)

cluster_spec = st.tuples(
    st.integers(min_value=1, max_value=3),  # node count
    st.integers(min_value=0, max_value=1),  # gpus per node
    st.integers(min_value=1, max_value=2),  # cpu slots
)


def build(spec, cspec):
    n_nodes, gpus, slots = cspec
    cluster = Cluster([(make_node(1.0, gpus, slots), n_nodes)], network=NET)
    graph = TaskGraph(DataRegistry())
    handles = [
        graph.registry.register(f"h{i}", 1e6, home=i % n_nodes) for i in range(6)
    ]
    for flops, r, w in spec:
        graph.submit("t", "p", flops, reads=[handles[r]], writes=[handles[w]])
    return cluster, graph


@settings(max_examples=60, deadline=None)
@given(spec=graph_spec, cspec=cluster_spec)
def test_simulator_invariants(spec, cspec):
    cluster, graph = build(spec, cspec)
    result = Simulator(cluster, PM, trace=True).run(graph)

    records = {r.tid: r for r in result.task_records}
    # 1. Every task ran exactly once, inside [0, makespan].
    assert len(records) == len(graph.tasks)
    for r in records.values():
        assert 0.0 <= r.start <= r.end <= result.makespan + 1e-9

    # 2. Dependencies respected.
    preds = graph.predecessors()
    for tid, plist in enumerate(preds):
        for p in plist:
            assert records[p].end <= records[tid].start + 1e-9

    # 3. Workers never oversubscribed: per (node, kind) at most
    #    (#workers of that kind) overlapping tasks.
    per_slot = defaultdict(list)
    for r in records.values():
        per_slot[(r.node, r.worker_kind)].append((r.start, r.end))
    for (node, kind), intervals in per_slot.items():
        nt = cluster[node].node_type
        capacity = nt.gpus if kind == "gpu" else nt.cpu_slots
        events = sorted(
            [(s, 1) for s, _ in intervals] + [(e, -1) for _, e in intervals],
            key=lambda t: (t[0], t[1]),
        )
        live = 0
        for _, delta in events:
            live += delta
            assert live <= capacity

    # 4. Work lower bound: makespan >= total flops / aggregate speed.
    total_flops = graph.total_flops()
    agg = sum(n.total_gflops for n in cluster) * 1e9
    assert result.makespan >= total_flops / agg - 1e-9


@settings(max_examples=30, deadline=None)
@given(
    spec=graph_spec,
    cspec=cluster_spec,
    factor=st.floats(min_value=1.5, max_value=4.0),
)
def test_makespan_monotone_in_task_cost(spec, cspec, factor):
    cluster, graph = build(spec, cspec)
    base = Simulator(cluster, PM).run(graph).makespan

    scaled_spec = [(f * factor, r, w) for f, r, w in spec]
    cluster2, graph2 = build(scaled_spec, cspec)
    scaled = Simulator(cluster2, PM).run(graph2).makespan
    assert scaled >= base - 1e-9


@settings(max_examples=30, deadline=None)
@given(spec=graph_spec, cspec=cluster_spec)
def test_simulation_deterministic(spec, cspec):
    cluster, graph = build(spec, cspec)
    m1 = Simulator(cluster, PM).run(graph).makespan
    cluster2, graph2 = build(spec, cspec)
    m2 = Simulator(cluster2, PM).run(graph2).makespan
    assert m1 == pytest.approx(m2, rel=1e-12)


# ---------------------------------------------------------------------------
# Metamorphic properties of the wave-batched fast engine.
#
# A fixed family of stdlib-random DAGs (seeds 0..23, reproducible without
# hypothesis) is pushed through FastSimulator and checked against
# transformations with known answers: rate scaling divides comm-free
# makespans exactly, lanes never oversubscribe, per-node NICs serialize
# to their stream count, and the record streams conserve the DAG.
# ---------------------------------------------------------------------------

import random

from repro.runtime import FastSimulator

METAMORPHIC_SEEDS = range(24)


def random_dag(seed, comm=True, speed=1.0, streams=1):
    """One stdlib-random DAG + cluster, fully determined by ``seed``."""
    rng = random.Random(seed)
    n_nodes = rng.randint(1, 4)
    gpus = rng.randint(0, 1)
    slots = rng.randint(1, 3)
    net = NetworkModel(
        latency_s=0.0, backbone_gbps=None, efficiency=1.0, streams=streams
    )
    node = make_node(speed, gpus, slots)
    cluster = Cluster([(node, n_nodes)], network=net)
    graph = TaskGraph(DataRegistry())
    handles = [
        graph.registry.register(
            f"h{i}", float(rng.choice([0, 1 << 20, 64 << 20])) if comm else 0.0,
            home=rng.randrange(n_nodes),
        )
        for i in range(rng.randint(4, 10))
    ]
    for _ in range(rng.randint(20, 60)):
        reads = rng.sample(handles, k=rng.randint(0, 2))
        writes = [rng.choice(handles)]
        graph.submit(
            "t", "p", float(rng.randint(1, 40)) * 1e8,
            reads=reads, writes=writes,
            priority=rng.randint(-3, 3),
        )
    return cluster, graph


@pytest.mark.parametrize("seed", METAMORPHIC_SEEDS)
def test_metamorphic_gflops_scaling(seed):
    """Comm-free makespans scale exactly 1/k with worker rates.

    With zero-byte handles and zero latency the schedule is pure
    compute, every duration is flops/rate, and scaling every rate by k
    divides each duration -- hence the makespan -- by exactly k.
    """
    k = 2.0
    cluster, graph = random_dag(seed, comm=False, speed=1.0)
    base = FastSimulator(cluster, PM).run(graph).makespan
    cluster_k, graph_k = random_dag(seed, comm=False, speed=k)
    scaled = FastSimulator(cluster_k, PM).run(graph_k).makespan
    assert scaled == pytest.approx(base / k, rel=1e-12)


@pytest.mark.parametrize("seed", METAMORPHIC_SEEDS)
def test_metamorphic_no_lane_overlap(seed):
    """Per (node, kind): concurrent fast-engine tasks <= lane count."""
    cluster, graph = random_dag(seed)
    result = FastSimulator(cluster, PM, trace=True).run(graph)
    per_slot = defaultdict(list)
    for r in result.task_records:
        per_slot[(r.node, r.worker_kind)].append((r.start, r.end))
        assert r.worker >= 0  # the fast path always attributes a lane
    for (node, kind), intervals in per_slot.items():
        nt = cluster[node].node_type
        capacity = nt.gpus if kind == "gpu" else nt.cpu_slots
        events = sorted(
            [(s, 1) for s, _ in intervals] + [(e, -1) for _, e in intervals],
            key=lambda t: (t[0], t[1]),
        )
        live = 0
        for _, delta in events:
            live += delta
            assert live <= capacity


@pytest.mark.parametrize("seed", METAMORPHIC_SEEDS)
def test_metamorphic_nic_serialization(seed):
    """Per node and direction, concurrent transfers <= NIC streams."""
    streams = 1 + seed % 2
    cluster, graph = random_dag(seed, streams=streams)
    result = FastSimulator(cluster, PM, trace=True).run(graph)
    for direction in ("src", "dst"):
        per_node = defaultdict(list)
        for t in result.transfer_records:
            if t.end > t.start:  # zero-byte pulls occupy no lane time
                per_node[getattr(t, direction)].append((t.start, t.end))
        for intervals in per_node.values():
            events = sorted(
                [(s, 1) for s, _ in intervals]
                + [(e, -1) for _, e in intervals],
                key=lambda t: (t[0], t[1]),
            )
            live = 0
            for _, delta in events:
                live += delta
                assert live <= streams


@pytest.mark.parametrize("seed", METAMORPHIC_SEEDS)
def test_metamorphic_record_conservation(seed):
    """The record streams conserve the DAG: nothing lost, nothing made up."""
    cluster, graph = random_dag(seed)
    result = FastSimulator(cluster, PM, trace=True).run(graph)
    # Every submitted task ran exactly once, no phantom tids.
    assert sorted(r.tid for r in result.task_records) == list(
        range(len(graph.tasks))
    )
    assert result.task_count == len(graph.tasks)
    # Transfers reference registered handles with their exact sizes and
    # never ship a handle to the node it is already on.
    sizes = graph.registry.sizes()
    for t in result.transfer_records:
        assert t.src != t.dst
        assert t.nbytes == sizes[t.hid]
    assert result.transfer_count == len(result.transfer_records)
    assert result.comm_bytes == sum(t.nbytes for t in result.transfer_records)
