"""Hand-built adversarial DAGs aimed at the fast path's weak points.

The wave engine's correctness argument rests on a handful of guards
(uniform-wave detection, the two-hop cross-node horizon, NIC lane
accounting, trigger-rank tie-breaking).  Each test here constructs a
graph whose *only* purpose is to stress one guard and then demands bit
identity through the package oracle.
"""

from repro.platform import Cluster, NetworkModel, NodeType
from repro.runtime import DataRegistry, PerfModel, Placement, TaskGraph

from .oracle import assert_equivalent

UNIT = NodeType(
    name="unit", site="SD", category="S", cpu_desc="", gpu_desc="",
    cpu_gflops=1.0, gpus=0, gpu_gflops=0.0, nic_gbps=8.0, memory_gb=1.0,
    cpu_slots=2,
)

GPU_NODE = NodeType(
    name="gnode", site="SD", category="L", cpu_desc="", gpu_desc="g",
    cpu_gflops=1.0, gpus=1, gpu_gflops=10.0, nic_gbps=8.0, memory_gb=1.0,
    cpu_slots=1,
)

PM = PerfModel(
    efficiency={
        ("t", "cpu"): 1.0, ("t", "gpu"): 1.0,
        ("slow", "cpu"): 0.5,
        ("c", "cpu"): 1.0,
    },
    overhead_s=0.0,
)

NET = NetworkModel(latency_s=0.0, backbone_gbps=None, efficiency=1.0)


def make_cluster(n_unit=2, n_gpu=0, streams=4):
    net = NetworkModel(
        latency_s=0.0, backbone_gbps=None, efficiency=1.0, streams=streams
    )
    comp = []
    if n_gpu:
        comp.append((GPU_NODE, n_gpu))
    if n_unit:
        comp.append((UNIT, n_unit))
    return Cluster(comp, network=net)


def test_cross_node_chain():
    """A deep chain ping-ponging between nodes: every edge is a push.

    Defeats wave formation entirely (each task's predecessor lives on
    the other node) and stresses the eager-push bookkeeping plus the
    horizon's cross-capability tracking.
    """
    cluster = make_cluster(2)
    g = TaskGraph(DataRegistry())
    prev = None
    for i in range(40):
        h = g.registry.register(f"h{i}", 16 << 20, home=i % 2)
        reads = [prev] if prev is not None else []
        g.submit("t", "p", 1e9, reads=reads, writes=[h])
        prev = h
    assert_equivalent(g, cluster, PM)


def test_cross_node_chains_interleaved_with_wave():
    """A homogeneous wave on node 0 racing a cross-node chain.

    The chain keeps inserting work into the draining node from outside;
    the two-hop horizon must stop the wave before any foreign
    assignment could land inside it.
    """
    cluster = make_cluster(2)
    g = TaskGraph(DataRegistry())
    for i in range(64):
        h = g.registry.register(f"w{i}", 0, home=0)
        g.submit("t", "p", 1e9, writes=[h])
    prev = None
    for i in range(10):
        h = g.registry.register(f"c{i}", 4 << 20, home=i % 2)
        reads = [prev] if prev is not None else []
        g.submit("t", "p", 3e8, reads=reads, writes=[h])
        prev = h
    _, stats = assert_equivalent(g, cluster, PM)
    assert stats["wave_tasks"] >= 0  # engagement depends on the horizon


def test_nic_contention_single_stream():
    """Many pulls from one producer through a single-stream NIC.

    The reference serializes sends on the producer's NIC lane; the fast
    path's lane accounting must produce the same transfer schedule.
    """
    cluster = make_cluster(8, streams=1)
    g = TaskGraph(DataRegistry())
    src = g.registry.register("src", 1 << 30, home=0)
    g.submit("t", "p", 1e9, writes=[src])
    for i in range(1, 8):
        out = g.registry.register(f"o{i}", 0, home=i)
        g.submit("t", "p", 1e9, reads=[src], writes=[out])
    assert_equivalent(g, cluster, PM)


def test_nic_contention_fan_in():
    """Reverse direction: one consumer pulls from seven producers."""
    cluster = make_cluster(8, streams=2)
    g = TaskGraph(DataRegistry())
    parts = []
    for i in range(1, 8):
        h = g.registry.register(f"p{i}", 256 << 20, home=i)
        g.submit("t", "p", 1e9, writes=[h])
        parts.append(h)
    out = g.registry.register("out", 0, home=0)
    g.submit("t", "p", 1e9, reads=parts, writes=[out])
    assert_equivalent(g, cluster, PM)


def test_priority_inversion():
    """High priority assigned to the *bottom* of a chain.

    Ready-queue ordering must not let the late high-priority tasks
    overtake anything they depend on, and the fast path must pop the
    same victim at every tie.
    """
    cluster = make_cluster(1)
    g = TaskGraph(DataRegistry())
    chain_h = g.registry.register("chain", 0, home=0)
    for depth in range(6):
        g.submit(
            "t", "p", 1e9,
            reads=[chain_h] if depth else [],
            writes=[chain_h],
            priority=depth,  # deeper tasks get *higher* priority
        )
    for i in range(6):
        h = g.registry.register(f"f{i}", 0, home=0)
        g.submit("t", "p", 1e9, writes=[h], priority=-i)
    assert_equivalent(g, cluster, PM)


def test_priority_ties_break_identically():
    """Dozens of equal-priority ready tasks: pure tie-break territory."""
    cluster = make_cluster(2)
    g = TaskGraph(DataRegistry())
    for i in range(50):
        h = g.registry.register(f"h{i}", 0, home=i % 2)
        g.submit("t", "p", 1e9, writes=[h], priority=7)
    assert_equivalent(g, cluster, PM)


def test_broken_wave_heterogeneous_member():
    """A single slow task in the middle of an otherwise uniform wave.

    The wave detector must either exclude it or fall back; both engines
    must agree on the resulting schedule exactly.
    """
    cluster = make_cluster(1)
    g = TaskGraph(DataRegistry())
    for i in range(60):
        h = g.registry.register(f"h{i}", 0, home=0)
        name = "slow" if i == 30 else "t"
        g.submit(name, "p", 1e9, writes=[h])
    assert_equivalent(g, cluster, PM)


def test_wave_with_gpu_preference_split():
    """Mixed CPU-only and CPU/GPU tasks on a GPU node."""
    cluster = make_cluster(0, n_gpu=2)
    g = TaskGraph(DataRegistry())
    for i in range(48):
        h = g.registry.register(f"h{i}", 0, home=i % 2)
        if i % 3:
            g.submit("t", "p", 1e9, writes=[h])
        else:
            g.submit("c", "p", 1e9, writes=[h], placement=Placement.CPU_ONLY)
    assert_equivalent(g, cluster, PM)


def test_vector_path_engages_and_matches():
    """A wide uniform wave large enough for the vectorized retire path."""
    cluster = make_cluster(1)
    g = TaskGraph(DataRegistry())
    for i in range(100):
        h = g.registry.register(f"h{i}", 0, home=0)
        g.submit("t", "p", 1e9, writes=[h])
    _, stats = assert_equivalent(g, cluster, PM)
    assert stats["vector_tasks"] >= 100


def test_diamond_fan_out_fan_in_across_nodes():
    """Fan-out to all nodes, fan back in: transfer-heavy joins."""
    cluster = make_cluster(4)
    g = TaskGraph(DataRegistry())
    root = g.registry.register("root", 64 << 20, home=0)
    g.submit("t", "p", 1e9, writes=[root])
    mids = []
    for i in range(4):
        for j in range(3):
            h = g.registry.register(f"m{i}_{j}", 32 << 20, home=i)
            g.submit("t", "p", 1e9, reads=[root], writes=[h])
            mids.append(h)
    out = g.registry.register("out", 0, home=3)
    g.submit("t", "p", 1e9, reads=mids, writes=[out])
    assert_equivalent(g, cluster, PM)
