"""Differential-testing subsystem gating the wave-batched fast engine.

Every test in this package runs the same task graph through the
reference :class:`repro.runtime.Simulator` and the wave-batched
:class:`repro.runtime.FastSimulator` and demands **bit identity** (see
:mod:`tests.runtime.differential.oracle`):

* ``test_scenario_table`` -- the locked a..p scenario menu;
* ``test_fuzz_corpus`` -- a >= 50-seed fuzzed corpus across both
  workload families (cholesky iterations + map/shuffle/reduce);
* ``test_adversarial`` -- hand-built DAGs aimed at the fast path's
  fallback boundaries (cross-node chains, NIC contention, priority
  inversions, broken waves);
* ``test_defects`` -- the seeded-defect harness: each engine mutation
  in ``repro.runtime.simfast.DEFECT_KINDS`` must be caught;
* ``test_batch_sweep`` -- :class:`repro.measure.batch.ScenarioBatch`
  against the naive per-configuration sweep.
"""
