"""Shared bounds for the differential suite: small tiles, clean env."""

import pytest


@pytest.fixture(autouse=True)
def _bounded_tiles(monkeypatch):
    """Pin both workloads to 16 tiles so the suite stays CI-sized.

    The full-fidelity (default-tile) equivalence run lives in the
    ``fullfidelity``-marked test and its dedicated CI job.
    """
    monkeypatch.setenv("REPRO_TILES_101", "16")
    monkeypatch.setenv("REPRO_TILES_128", "16")
    monkeypatch.delenv("REPRO_SIMFAST", raising=False)
