"""Seeded-defect harness: every engine mutation must be caught.

The differential oracle is only as good as its sensitivity.  This
harness injects each known-bad mutation into the fast engine
(``FastSimulator(..., _defects=(kind,))``) on a workload that engages
the mutated machinery and asserts the reference-vs-fast comparison
*detects* it.  A defect the suite cannot see would mean the oracle has
a blind spot exactly where the fast path is most likely to break.
"""

import pytest

from repro.geostat import IterationPlan
from repro.geostat.phases import build_iteration_graph
from repro.platform import Cluster, NetworkModel, NodeType, get_scenario
from repro.runtime import (
    DataRegistry,
    FastSimulator,
    PerfModel,
    Simulator,
    TaskGraph,
)
from repro.runtime.simfast import DEFECT_KINDS
from repro.workload import Workload

from .oracle import results_differ


def _scenario_graph(key="b", n_fact=1):
    scenario = get_scenario(key)
    cluster = scenario.build_cluster()
    workload = Workload.from_name(scenario.workload)
    graph = build_iteration_graph(
        cluster, workload, IterationPlan(n_fact=n_fact, n_gen=len(cluster))
    )
    return graph, cluster


def test_defect_kinds_is_the_locked_set():
    assert DEFECT_KINDS == ("wave_boundary", "drop_transfer", "tie_break")


def test_unknown_defect_rejected():
    cluster = get_scenario("b").build_cluster()
    with pytest.raises(ValueError, match="defect"):
        FastSimulator(cluster, PerfModel(), _defects=("off_by_one",))


def test_clean_run_matches_reference():
    """Sanity: with no defects injected the engines agree (wave-heavy)."""
    graph, cluster = _scenario_graph()
    ref = Simulator(cluster, PerfModel(), trace=True).run(graph)
    fast_sim = FastSimulator(cluster, PerfModel(), trace=True)
    fast = fast_sim.run(graph)
    assert not results_differ(ref, fast)
    assert fast_sim.last_run_stats["wave_tasks"] > 100


def test_wave_boundary_defect_is_caught():
    """Retiring one task too many per wave must be visible.

    Scenario b at n_fact=1 drains hundreds of generation tasks through
    waves, so a mis-placed wave boundary perturbs the schedule.
    """
    graph, cluster = _scenario_graph()
    ref = Simulator(cluster, PerfModel(), trace=True).run(graph)
    bad = FastSimulator(
        cluster, PerfModel(), trace=True, _defects=("wave_boundary",)
    ).run(graph)
    assert results_differ(ref, bad)


def test_drop_transfer_defect_is_caught():
    """Losing a single eager push must be visible in the record stream."""
    graph, cluster = _scenario_graph(n_fact=2)
    ref = Simulator(cluster, PerfModel(), trace=True).run(graph)
    bad = FastSimulator(
        cluster, PerfModel(), trace=True, _defects=("drop_transfer",)
    ).run(graph)
    assert results_differ(ref, bad)


def test_tie_break_defect_is_caught():
    """Flipping the equal-rate CPU/GPU tie must change worker kinds.

    Uses a node whose CPU and GPU rates are identical so the defect's
    flipped preference is the *only* difference.
    """
    tie = NodeType(
        name="tie", site="SD", category="L", cpu_desc="", gpu_desc="g",
        cpu_gflops=1.0, gpus=1, gpu_gflops=1.0, nic_gbps=8.0,
        memory_gb=1.0, cpu_slots=1,
    )
    net = NetworkModel(latency_s=0.0, backbone_gbps=None, efficiency=1.0)
    cluster = Cluster([(tie, 1)], network=net)
    pm = PerfModel(
        efficiency={("t", "cpu"): 1.0, ("t", "gpu"): 1.0}, overhead_s=0.0
    )
    g = TaskGraph(DataRegistry())
    a = g.registry.register("a", 0, home=0)
    b = g.registry.register("b", 0, home=0)
    g.submit("t", "p", 1e9, writes=[a])
    g.submit("t", "p", 1e9, reads=[a], writes=[b])
    ref = Simulator(cluster, pm, trace=True).run(g)
    bad = FastSimulator(
        cluster, pm, trace=True, _defects=("tie_break",)
    ).run(g)
    assert results_differ(ref, bad)
    assert [t.worker_kind for t in ref.task_records] != [
        t.worker_kind for t in bad.task_records
    ]


@pytest.mark.parametrize("kind", DEFECT_KINDS)
def test_every_defect_kind_has_a_catching_workload(kind):
    """Umbrella: each mutation in DEFECT_KINDS is caught by the suite.

    Mirrors the dedicated tests above but iterates the locked tuple, so
    adding a new defect kind without a catching workload fails here.
    """
    if kind == "tie_break":
        test_tie_break_defect_is_caught()
        return
    graph, cluster = _scenario_graph(
        n_fact=1 if kind == "wave_boundary" else 2
    )
    ref = Simulator(cluster, PerfModel(), trace=True).run(graph)
    bad = FastSimulator(
        cluster, PerfModel(), trace=True, _defects=(kind,)
    ).run(graph)
    assert results_differ(ref, bad)
