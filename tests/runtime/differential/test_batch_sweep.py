"""ScenarioBatch (one graph, many bindings) vs the naive sweep.

The batched sweep shares one graph build and one plan template across
every ``(n_fact, n_gen)`` configuration; this suite pins its promise:
every makespan -- and the full record stream of bound plans -- is
bit-identical to rebuilding the graph from scratch and running the
reference engine.
"""

import pytest

from repro.geostat import IterationPlan
from repro.geostat.phases import build_iteration_graph
from repro.measure.batch import ScenarioBatch, batch_measure
from repro.measure.sweep import scenario_actions, sweep_scenario
from repro.platform import get_scenario
from repro.runtime import PerfModel, Simulator
from repro.workload import Workload

from .oracle import RESULT_FIELDS


def _naive(cluster, workload, n_fact, n_gen):
    graph = build_iteration_graph(
        cluster, workload, IterationPlan(n_fact=n_fact, n_gen=n_gen)
    )
    return Simulator(cluster, PerfModel(), trace=True).run(graph)


@pytest.mark.parametrize("key", ["a", "b", "c"])
def test_batched_sweep_makespans_bit_identical(key):
    scenario = get_scenario(key)
    cluster = scenario.build_cluster()
    workload = Workload.from_name(scenario.workload)
    batch = ScenarioBatch(cluster, workload)
    n_total = len(cluster)
    for n in scenario_actions(scenario, workload):
        assert batch.measure(int(n), n_total) == _naive(
            cluster, workload, int(n), n_total
        ).makespan
        # Rigid configuration (n_gen = n_fact), the Figure 5 yellow line.
        assert batch.measure(int(n), int(n)) == _naive(
            cluster, workload, int(n), int(n)
        ).makespan


def test_batched_records_match_reference():
    """Beyond makespans: bound plans replay the exact record streams."""
    scenario = get_scenario("b")
    cluster = scenario.build_cluster()
    workload = Workload.from_name(scenario.workload)
    batch = ScenarioBatch(cluster, workload)
    n_total = len(cluster)
    from repro.runtime import FastSimulator

    sim = FastSimulator(cluster, PerfModel(), trace=True)
    for n_fact in (1, 2, n_total):
        ref = _naive(cluster, workload, n_fact, n_total)
        fast = sim.run_plan(batch.plan(n_fact, n_total))
        for name in RESULT_FIELDS:
            assert getattr(fast, name) == getattr(ref, name)
        assert fast.task_records == ref.task_records
        assert fast.transfer_records == ref.transfer_records


def test_batch_measure_matches_sweep_loop():
    """Module-level helper returns exactly the naive sweep's pairs."""
    scenario = get_scenario("a")
    cluster = scenario.build_cluster()
    workload = Workload.from_name(scenario.workload)
    actions = scenario_actions(scenario, workload)
    got = batch_measure(scenario, actions, include_rigid=True)
    for n in actions:
        duration, rigid = got[int(n)]
        assert duration == _naive(cluster, workload, int(n), len(cluster)).makespan
        assert rigid == _naive(cluster, workload, int(n), int(n)).makespan


def test_sweep_scenario_identical_under_fast_flag(monkeypatch):
    """The engine flag must not change a single bank value.

    The fast engine is the default; ``REPRO_SIMFAST=0`` is the opt-out,
    so the reference side pins the flag off explicitly.
    """
    scenario = get_scenario("a")
    monkeypatch.setenv("REPRO_SIMFAST", "0")
    ref_bank = sweep_scenario(scenario, augment=2, include_rigid=True)
    monkeypatch.setenv("REPRO_SIMFAST", "1")
    fast_bank = sweep_scenario(scenario, augment=2, include_rigid=True)
    assert fast_bank.true_means == ref_bank.true_means
    assert fast_bank.rigid == ref_bank.rigid
    assert fast_bank.lp == ref_bank.lp
    assert all(
        (fast_bank.samples[n] == ref_bank.samples[n]).all()
        for n in ref_bank.actions
    )


def test_simulator_factory_default_on_with_opt_out(monkeypatch):
    """Unset or truthy selects the fast engine; falsy opts back out."""
    from repro.runtime import FastSimulator, simulator_factory

    monkeypatch.delenv("REPRO_SIMFAST", raising=False)
    assert simulator_factory() is FastSimulator
    for flag in ("0", "false", "no", "off"):
        monkeypatch.setenv("REPRO_SIMFAST", flag)
        assert simulator_factory() is Simulator
    for flag in ("1", "true", "yes", "on"):
        monkeypatch.setenv("REPRO_SIMFAST", flag)
        assert simulator_factory() is FastSimulator


def test_plan_rejects_out_of_range_configs():
    scenario = get_scenario("a")
    cluster = scenario.build_cluster()
    batch = ScenarioBatch(cluster, Workload.from_name(scenario.workload))
    with pytest.raises(ValueError, match="out of range"):
        batch.plan(0)
    with pytest.raises(ValueError, match="out of range"):
        batch.plan(len(cluster) + 1)
