"""Reference-vs-fast oracle: assert the engines agree bit for bit.

The fast path's contract is not "close": it is *the same simulation*.
The oracle therefore compares the entire observable surface with exact
equality -- never ``pytest.approx``:

* every ``SimulationResult`` field (makespan, task/transfer counts,
  communicated bytes and time, phase spans);
* the full ``TaskRecord`` / ``TransferRecord`` streams (``trace=True``);
* the observability trace **bytes**: each engine runs under its own
  fresh tick-clocked in-memory tracer and the emitted JSONL lines must
  match line for line.
"""

from repro.obs import MemorySink, TickClock, Tracer, scoped
from repro.runtime import FastSimulator, PerfModel, Simulator

#: Scalar/structured SimulationResult fields compared with ``==``.
RESULT_FIELDS = (
    "makespan",
    "task_count",
    "transfer_count",
    "comm_bytes",
    "comm_time",
    "phase_spans",
)


def traced_run(sim, graph):
    """Run ``sim`` on ``graph`` under a fresh tick-clock memory tracer.

    Returns ``(result, jsonl_lines)``.  A private tracer per run keeps
    the two engines' byte streams independent and deterministic (tick
    clock, fresh metric registry).
    """
    tracer = Tracer(sink=MemorySink(), clock=TickClock())
    tracer.header()
    with scoped(tracer):
        result = sim.run(graph)
    tracer.close()
    return result, tracer.sink.lines()


def results_differ(ref, fast) -> bool:
    """True when any observable differs (the defect harness's detector)."""
    if any(getattr(ref, f) != getattr(fast, f) for f in RESULT_FIELDS):
        return True
    return (
        ref.task_records != fast.task_records
        or ref.transfer_records != fast.transfer_records
    )


def _assert_same_stream(label, ref, fast):
    """Exact record-stream equality with a first-divergence diagnostic."""
    if ref == fast:
        return
    for i, (a, b) in enumerate(zip(ref, fast)):
        if a != b:
            raise AssertionError(
                f"{label} diverge at index {i}:\n  ref  {a!r}\n  fast {b!r}"
            )
    raise AssertionError(
        f"{label} lengths diverge: ref={len(ref)} fast={len(fast)}"
    )


def assert_equivalent(graph, cluster, perfmodel=None, policy="priority"):
    """Oracle: reference and fast engines agree bit for bit on ``graph``.

    Returns ``(result, fast_stats)`` so callers can additionally assert
    that the wave/vector machinery actually engaged
    (``fast_stats["wave_tasks"]`` etc.) -- a differential suite that
    only ever exercises the task-by-task fallback proves nothing.
    """
    pm = perfmodel if perfmodel is not None else PerfModel()
    ref, ref_lines = traced_run(
        Simulator(cluster, pm, trace=True, policy=policy), graph
    )
    fast_sim = FastSimulator(cluster, pm, trace=True, policy=policy)
    fast, fast_lines = traced_run(fast_sim, graph)
    for name in RESULT_FIELDS:
        assert getattr(fast, name) == getattr(ref, name), (
            f"{name}: ref={getattr(ref, name)!r} fast={getattr(fast, name)!r}"
        )
    _assert_same_stream("task_records", ref.task_records, fast.task_records)
    _assert_same_stream(
        "transfer_records", ref.transfer_records, fast.transfer_records
    )
    assert fast_lines == ref_lines, "obs trace bytes diverge"
    return ref, fast_sim.last_run_stats
