"""Differential oracle over the locked scenario table (a..p, 16 tiles).

Each scenario runs the full generation + factorization + solve iteration
graph at several factorization node counts (smallest, 2, half, all) and
the fast engine must reproduce the reference bit for bit -- results,
record streams and obs trace bytes (see the package oracle).
"""

import pytest

from repro.geostat import IterationPlan
from repro.geostat.phases import build_iteration_graph
from repro.platform import get_scenario
from repro.workload import Workload

from .oracle import assert_equivalent

SCENARIO_KEYS = tuple("abcdefghijklmnop")


def _configs(n_total):
    """Factorization node counts exercised per scenario."""
    return sorted({1, 2, n_total // 2, n_total} - {0})


@pytest.mark.parametrize("key", SCENARIO_KEYS)
def test_scenario_bit_identical(key):
    scenario = get_scenario(key)
    cluster = scenario.build_cluster()
    workload = Workload.from_name(scenario.workload)
    n_total = len(cluster)
    for n_fact in _configs(n_total):
        graph = build_iteration_graph(
            cluster, workload, IterationPlan(n_fact=n_fact, n_gen=n_total)
        )
        assert_equivalent(graph, cluster)


def test_wave_path_engages_on_table():
    """The suite exercises the batched wave path, not just the fallback.

    At 16 tiles the distributed generation phase of scenario b
    (n_fact=1) retires hundreds of tasks through homogeneous waves; if
    a regression silently disabled the fast path, the differential
    tests above would all pass vacuously.
    """
    scenario = get_scenario("b")
    cluster = scenario.build_cluster()
    workload = Workload.from_name(scenario.workload)
    graph = build_iteration_graph(
        cluster, workload, IterationPlan(n_fact=1, n_gen=len(cluster))
    )
    _, stats = assert_equivalent(graph, cluster)
    assert stats["waves"] > 0
    assert stats["wave_tasks"] > 100


def test_fifo_policy_bit_identical():
    """The oracle holds under the alternative scheduling policy too."""
    scenario = get_scenario("a")
    cluster = scenario.build_cluster()
    workload = Workload.from_name(scenario.workload)
    graph = build_iteration_graph(
        cluster, workload, IterationPlan(n_fact=2, n_gen=len(cluster))
    )
    assert_equivalent(graph, cluster, policy="fifo")
