"""Full-fidelity differential runs: the paper's real tile counts.

The bounded suite pins both workloads to 16 tiles; this module re-runs
the oracle at ``REPRO_TILES_101=101`` / ``REPRO_TILES_128=128`` -- the
geometry every headline figure uses -- and additionally demands that
the downstream timeline exports (Chrome trace and Paje CSV) are
**byte-for-byte** equal, since those artifacts are what a human would
diff when debugging a schedule.

Marked ``fullfidelity`` and excluded from the default pytest run (see
``addopts`` in pyproject.toml); CI runs it in a dedicated job.
"""

import json

import pytest

from repro.geostat import IterationPlan
from repro.geostat.phases import build_iteration_graph
from repro.obs import timeline
from repro.platform import get_scenario
from repro.runtime import FastSimulator, PerfModel, Simulator
from repro.workload import Workload

from .oracle import assert_equivalent

pytestmark = pytest.mark.fullfidelity

#: One scenario per workload family: (key, factorization node counts).
CASES = [("a", (1, 2, 10)), ("c", (2, 20))]


def _full_tiles(monkeypatch):
    monkeypatch.setenv("REPRO_TILES_101", "101")
    monkeypatch.setenv("REPRO_TILES_128", "128")


@pytest.mark.parametrize("key,n_facts", CASES)
def test_fullfidelity_bit_identical(key, n_facts, monkeypatch):
    _full_tiles(monkeypatch)
    scenario = get_scenario(key)
    cluster = scenario.build_cluster()
    workload = Workload.from_name(scenario.workload)
    assert workload.t in (101, 128)
    for n_fact in n_facts:
        graph = build_iteration_graph(
            cluster, workload, IterationPlan(n_fact=n_fact, n_gen=len(cluster))
        )
        assert_equivalent(graph, cluster)


def test_fullfidelity_timeline_exports_byte_identical(monkeypatch):
    _full_tiles(monkeypatch)
    scenario = get_scenario("a")
    cluster = scenario.build_cluster()
    workload = Workload.from_name(scenario.workload)
    graph = build_iteration_graph(
        cluster, workload, IterationPlan(n_fact=2, n_gen=len(cluster))
    )
    ref = Simulator(cluster, PerfModel(), trace=True).run(graph)
    fast = FastSimulator(cluster, PerfModel(), trace=True).run(graph)
    assert fast.makespan == ref.makespan
    ref_chrome = json.dumps(timeline.chrome_trace(ref, cluster), sort_keys=True)
    fast_chrome = json.dumps(timeline.chrome_trace(fast, cluster), sort_keys=True)
    assert fast_chrome == ref_chrome
    assert timeline.paje_csv(fast, cluster) == timeline.paje_csv(ref, cluster)
