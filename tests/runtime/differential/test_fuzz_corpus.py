"""Differential oracle over a fuzzed platform corpus (both families).

Fifty seeded platforms -- 25 cholesky, 25 map/shuffle/reduce -- drawn
from :func:`repro.fuzz.platforms.sample_corpus` (deterministic in the
root seed, so a failure names a reproducible platform).  Each platform
simulates one factorization/participation node count derived from its
index, covering the full 1..N range across the corpus.
"""

import pytest

from repro.fuzz.platforms import sample_corpus
from repro.fuzz.workloads import build_msr_graph, msr_perfmodel
from repro.geostat import IterationPlan
from repro.geostat.phases import build_iteration_graph
from repro.platform import Cluster
from repro.runtime import PerfModel
from repro.workload import Workload

from .oracle import assert_equivalent

ROOT_SEED = 20260808
CHOLESKY = sample_corpus(25, root_seed=ROOT_SEED, families=("cholesky",))
MSR = sample_corpus(25, root_seed=ROOT_SEED, families=("msr",))


def _ids(corpus):
    return [f"{p.family}-{p.index:03d}" for p in corpus]


@pytest.mark.parametrize("platform", CHOLESKY, ids=_ids(CHOLESKY))
def test_cholesky_platform_bit_identical(platform):
    cluster = platform.build_cluster()
    n_total = len(cluster)
    workload = Workload(
        name=platform.scenario.workload,
        t=platform.tiles,
        nb=max(1, round(platform.matrix_order / platform.tiles)),
    )
    n_fact = 1 + platform.index % n_total
    graph = build_iteration_graph(
        cluster, workload, IterationPlan(n_fact=n_fact, n_gen=n_total)
    )
    assert_equivalent(graph, cluster, PerfModel())


@pytest.mark.parametrize("platform", MSR, ids=_ids(MSR))
def test_msr_platform_bit_identical(platform):
    cluster = platform.build_cluster()
    n = 1 + platform.index % len(cluster)
    graph = build_msr_graph(cluster, platform.msr, n)
    assert_equivalent(graph, cluster, msr_perfmodel())


def test_corpus_is_deterministic():
    """The corpus is pinned: same seed, same platforms, every run."""
    again = sample_corpus(25, root_seed=ROOT_SEED, families=("cholesky",))
    assert [p.key for p in again] == [p.key for p in CHOLESKY]
    assert all(isinstance(p.build_cluster(), Cluster) for p in again[:1])
