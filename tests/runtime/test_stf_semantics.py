"""Semantic equivalence of the simulated execution with STF order.

Random "programs" over a handful of registers are executed twice:

1. sequentially, in submission order (the STF semantics the programmer
   wrote);
2. in the simulator's completion order, respecting only the inferred
   dependencies.

If the STF dependency inference (RAW/WAR/WAW) is correct, both
executions produce identical final register values -- any missing edge
would let the simulator reorder conflicting accesses and diverge.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform import Cluster, NetworkModel, NodeType
from repro.runtime import DataRegistry, PerfModel, Simulator, TaskGraph

UNIT = NodeType(
    name="unit", site="SD", category="S", cpu_desc="", gpu_desc="",
    cpu_gflops=1.0, gpus=0, gpu_gflops=0.0, nic_gbps=8.0, memory_gb=1.0,
    cpu_slots=2,
)
PM = PerfModel(efficiency={("op", "cpu"): 1.0}, overhead_s=0.0)
NET = NetworkModel(latency_s=0.0, efficiency=1.0, streams=2)

N_REGS = 4

program_spec = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=N_REGS - 1),   # read register
        st.integers(min_value=0, max_value=N_REGS - 1),   # write register
        st.floats(min_value=0.1e9, max_value=3e9),        # task cost
    ),
    min_size=1,
    max_size=30,
)


def apply_op(state, op_id, read_reg, write_reg):
    """Deterministic, order-sensitive update."""
    state[write_reg] = (state[read_reg] * 31 + op_id * 7 + 1) % 1_000_003


def sequential_result(spec):
    state = list(range(N_REGS))
    for op_id, (r, w, _cost) in enumerate(spec):
        apply_op(state, op_id, r, w)
    return state


def simulated_order(spec, n_nodes):
    cluster = Cluster([(UNIT, n_nodes)], network=NET)
    graph = TaskGraph(DataRegistry())
    regs = [graph.registry.register(f"r{i}", 1e5, home=i % n_nodes)
            for i in range(N_REGS)]
    for op_id, (r, w, cost) in enumerate(spec):
        graph.submit("op", "p", cost, reads=[regs[r]], writes=[regs[w]],
                     tag=(op_id, r, w))
    result = Simulator(cluster, PM, trace=True).run(graph)
    order = sorted(result.task_records, key=lambda rec: (rec.end, rec.tid))
    state = list(range(N_REGS))
    for rec in order:
        op_id, r, w = graph.tasks[rec.tid].tag
        apply_op(state, op_id, r, w)
    return state


class TestSTFSemantics:
    @settings(max_examples=80, deadline=None)
    @given(spec=program_spec, n_nodes=st.integers(min_value=1, max_value=3))
    def test_completion_order_preserves_semantics(self, spec, n_nodes):
        assert simulated_order(spec, n_nodes) == sequential_result(spec)

    def test_known_conflicting_program(self):
        # r0 -> r1, then r1 -> r0 twice: ordering matters strongly.
        spec = [(0, 1, 1e9), (1, 0, 0.2e9), (1, 0, 0.4e9), (0, 1, 0.1e9)]
        assert simulated_order(spec, 3) == sequential_result(spec)
