"""Tests for the scheduling-policy ablation (priority vs FIFO)."""

import pytest

from repro.geostat import ExaGeoStat, IterationPlan
from repro.linalg import TileGrid, submit_cholesky
from repro.platform import Cluster, NetworkModel, NodeType, get_scenario
from repro.runtime import DataRegistry, PerfModel, Simulator, TaskGraph
from repro.workload import Workload

UNIT = NodeType(
    name="unit", site="SD", category="S", cpu_desc="", gpu_desc="",
    cpu_gflops=1.0, gpus=0, gpu_gflops=0.0, nic_gbps=8.0, memory_gb=1.0,
    cpu_slots=1,
)
PM = PerfModel(
    efficiency={("hi", "cpu"): 1.0, ("lo", "cpu"): 1.0},
    overhead_s=0.0,
)
NET = NetworkModel(latency_s=0.0, efficiency=1.0)


class TestPolicySelection:
    def test_invalid_policy_rejected(self):
        cluster = Cluster([(UNIT, 1)], network=NET)
        with pytest.raises(ValueError):
            Simulator(cluster, PM, policy="heft")

    def test_priority_serves_urgent_first(self):
        """Two tasks ready simultaneously: priority policy runs the
        high-priority one first, FIFO the first-submitted one."""
        cluster = Cluster([(UNIT, 1)], network=NET)

        def build():
            g = TaskGraph(DataRegistry())
            a = g.registry.register("a", 0, home=0)
            b = g.registry.register("b", 0, home=0)
            g.submit("lo", "p", 1e9, writes=[a], priority=0)
            g.submit("hi", "p", 1e9, writes=[b], priority=9)
            return g

        rec_prio = Simulator(cluster, PM, trace=True).run(build()).task_records
        rec_fifo = Simulator(cluster, PM, trace=True, policy="fifo").run(
            build()
        ).task_records
        first_prio = min(rec_prio, key=lambda r: r.start)
        first_fifo = min(rec_fifo, key=lambda r: r.start)
        assert first_prio.name == "hi"
        assert first_fifo.name == "lo"


class TestPolicyOnCholesky:
    def test_priority_no_worse_than_fifo_on_iteration(self):
        """On the full multi-phase iteration, panel prioritization should
        not lose to eager FIFO (and usually wins)."""
        scenario = get_scenario("b")
        cluster = scenario.build_cluster()
        workload = Workload(name="101", t=16, nb=512)

        makespans = {}
        for policy in ("priority", "fifo"):
            app = ExaGeoStat(cluster, workload)
            app.simulator = Simulator(cluster, policy=policy)
            makespans[policy] = app.simulate(
                IterationPlan(n_fact=6, n_gen=14)
            ).makespan
        assert makespans["priority"] <= makespans["fifo"] * 1.05

    def test_both_policies_complete_all_tasks(self):
        cluster = Cluster([(UNIT, 2)], network=NET)
        pm = PerfModel(efficiency={
            ("potrf", "cpu"): 1.0, ("trsm", "cpu"): 1.0,
            ("syrk", "cpu"): 1.0, ("gemm", "cpu"): 1.0,
        }, overhead_s=0.0)
        for policy in ("priority", "fifo"):
            g = TaskGraph(DataRegistry())
            tiles = TileGrid(5, 10)
            tiles.register(g.registry, lambda i, j: (i + j) % 2)
            submit_cholesky(g, tiles)
            res = Simulator(cluster, pm, policy=policy).run(g)
            assert res.task_count == len(g.tasks)
