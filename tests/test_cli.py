"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(autouse=True)
def small(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TILES_101", "10")
    monkeypatch.setenv("REPRO_TILES_128", "10")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for argv in (
            ["table2"], ["scenarios"], ["sweep", "b"], ["compare", "b"],
            ["fig6"], ["replay", "b", "GP-UCB"], ["overhead"],
            ["grid"], ["trace"], ["predict"], ["checks"],
            ["bench"], ["bench", "--scenarios", "all", "--workers", "2"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.fn)


class TestCommands:
    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "chifflot" in out and "b715" in out

    def test_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "G5K 2L-6M-6S 101" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "b"]) == 0
        out = capsys.readouterr().out
        assert "n_fact" in out and "LP" in out

    def test_replay(self, capsys):
        assert main(["replay", "b", "GP-UCB", "--iterations", "5", "8"]) == 0
        out = capsys.readouterr().out
        assert "iteration   5" in out

    def test_compare(self, capsys):
        assert main(["compare", "b", "--reps", "2"]) == 0
        out = capsys.readouterr().out
        assert "GP-discontinuous" in out

    def test_trace(self, capsys):
        assert main(["trace", "b"]) == 0
        out = capsys.readouterr().out
        assert "legend" in out

    def test_overhead(self, capsys):
        assert main(["overhead", "--reps", "2", "--iterations", "8"]) == 0
        out = capsys.readouterr().out
        assert "steady state" in out

    def test_grid(self, capsys):
        assert main(["grid", "b", "--step", "6"]) == 0
        out = capsys.readouterr().out
        assert "best:" in out

    def test_predict(self, capsys):
        assert main(["predict", "--points", "36", "--missing", "6"]) == 0
        out = capsys.readouterr().out
        assert "kriging MSPE" in out

    def test_checks(self, capsys):
        assert main(["checks", "b"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out


class TestLint:
    def test_lint_parses(self):
        args = build_parser().parse_args(["lint", "--strict"])
        assert callable(args.fn)

    def test_lint_repo_is_clean(self, capsys):
        assert main(["lint", "--strict"]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_lint_json_format(self, capsys):
        import json

        assert main(["lint", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 0
        assert payload["files_analyzed"] > 100

    def test_lint_findings_exit_nonzero(self, tmp_path, capsys, monkeypatch):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        src = tmp_path / "src"
        src.mkdir()
        (src / "bad.py").write_text("def f(xs=[]):\n    return xs\n")
        monkeypatch.chdir(tmp_path)
        with pytest.raises(SystemExit) as exc:
            main(["lint", "--strict"])
        assert exc.value.code == 1
        assert "MUT001" in capsys.readouterr().out
