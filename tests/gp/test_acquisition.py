"""Tests for EI/PI acquisition functions."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import expected_improvement, probability_of_improvement


class TestExpectedImprovement:
    def test_zero_sd_certain_improvement(self):
        ei = expected_improvement(np.array([3.0]), np.array([0.0]), best=5.0)
        assert ei[0] == pytest.approx(2.0)

    def test_zero_sd_no_improvement(self):
        ei = expected_improvement(np.array([7.0]), np.array([0.0]), best=5.0)
        assert ei[0] == 0.0

    def test_symmetric_candidate_half_normal(self):
        """mean == best: EI = s * phi(0) = s / sqrt(2 pi)."""
        s = 2.0
        ei = expected_improvement(np.array([5.0]), np.array([s]), best=5.0)
        assert ei[0] == pytest.approx(s / np.sqrt(2 * np.pi))

    def test_monotone_in_uncertainty(self):
        sds = np.array([0.1, 1.0, 5.0])
        ei = expected_improvement(np.full(3, 6.0), sds, best=5.0)
        assert ei[0] < ei[1] < ei[2]

    def test_monotone_in_mean(self):
        means = np.array([3.0, 5.0, 7.0])
        ei = expected_improvement(means, np.full(3, 1.0), best=5.0)
        assert ei[0] > ei[1] > ei[2]

    @settings(max_examples=100, deadline=None)
    @given(
        mean=st.floats(min_value=-50, max_value=50),
        sd=st.floats(min_value=0, max_value=20),
        best=st.floats(min_value=-50, max_value=50),
    )
    def test_property_nonnegative(self, mean, sd, best):
        ei = expected_improvement(np.array([mean]), np.array([sd]), best)
        assert ei[0] >= 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            expected_improvement(np.zeros(2), np.zeros(3), 1.0)

    def test_negative_sd_rejected(self):
        with pytest.raises(ValueError):
            expected_improvement(np.zeros(1), np.array([-1.0]), 1.0)

    def test_xi_reduces_ei(self):
        ei0 = expected_improvement(np.array([4.0]), np.array([1.0]), 5.0, xi=0.0)
        ei1 = expected_improvement(np.array([4.0]), np.array([1.0]), 5.0, xi=0.5)
        assert ei1 < ei0


class TestProbabilityOfImprovement:
    def test_mean_equals_best_is_half(self):
        pi = probability_of_improvement(np.array([5.0]), np.array([1.0]), 5.0)
        assert pi[0] == pytest.approx(0.5)

    def test_zero_sd_binary(self):
        pi = probability_of_improvement(
            np.array([3.0, 7.0]), np.array([0.0, 0.0]), 5.0
        )
        assert list(pi) == [1.0, 0.0]

    def test_bounded(self):
        rng = np.random.default_rng(0)
        pi = probability_of_improvement(
            rng.normal(size=50), rng.uniform(0, 3, size=50), 0.3
        )
        assert np.all((pi >= 0) & (pi <= 1))
