"""Tests for universal kriging (exact interpolation, coverage, trends)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import (
    ConstantTrend,
    Exponential,
    GaussianProcess,
    GroupDummyTrend,
    LinearTrend,
)


class TestInterpolation:
    def test_noise_free_interpolates(self):
        """With negligible nugget the GP mean passes through the data."""
        x = np.array([0.0, 1.0, 2.5, 4.0])
        y = np.sin(x)
        gp = GaussianProcess(noise_var=1e-12, optimize=False,
                             kernel=Exponential(theta=1.0), alpha=1.0)
        gp.fit(x, y)
        mean, sd = gp.predict(x)
        assert np.allclose(mean, y, atol=1e-4)
        assert np.all(sd < 1e-2)

    def test_uncertainty_grows_away_from_data(self):
        x = np.array([0.0, 1.0])
        gp = GaussianProcess(noise_var=1e-10, optimize=False, alpha=1.0)
        gp.fit(x, np.array([0.0, 1.0]))
        _, sd_near = gp.predict(np.array([0.5]))
        _, sd_far = gp.predict(np.array([10.0]))
        assert sd_far > sd_near

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=1000))
    def test_property_interpolation_random_points(self, seed):
        rng = np.random.default_rng(seed)
        x = np.sort(rng.uniform(0, 10, size=6))
        # Ensure separation so the kernel matrix stays well conditioned.
        x = x + np.arange(6) * 0.5
        y = rng.standard_normal(6)
        gp = GaussianProcess(noise_var=1e-12, optimize=False, alpha=1.0)
        gp.fit(x, y)
        mean, _ = gp.predict(x)
        assert np.allclose(mean, y, atol=1e-3)


class TestFigure3CosExample:
    """The paper's Figure 3: GP fit over cos with 8 measurements."""

    def setup_method(self):
        rng = np.random.default_rng(42)
        self.x = np.sort(rng.uniform(0, 4 * np.pi, size=8))
        self.y = np.cos(self.x)
        self.grid = np.linspace(0, 4 * np.pi, 200)

    def test_mean_close_near_measurements(self):
        gp = GaussianProcess(noise_var=1e-8, optimize=True).fit(self.x, self.y)
        mean, _ = gp.predict(self.x)
        assert np.allclose(mean, self.y, atol=1e-2)

    def test_95ci_covers_truth_mostly(self):
        gp = GaussianProcess(noise_var=1e-8, optimize=True).fit(self.x, self.y)
        mean, sd = gp.predict(self.grid)
        truth = np.cos(self.grid)
        inside = np.abs(truth - mean) <= 1.96 * sd + 1e-9
        assert inside.mean() > 0.85


class TestTrends:
    def test_linear_trend_recovers_line(self):
        x = np.arange(1.0, 11.0)
        y = 3.0 + 0.5 * x
        gp = GaussianProcess(
            trend=LinearTrend(), noise_var=1e-10, optimize=False,
            alpha=1e-6, kernel=Exponential(theta=1.0),
        ).fit(x, y)
        assert gp.fit_.gamma == pytest.approx([3.0, 0.5], abs=1e-3)
        mean, _ = gp.predict(np.array([20.0]))
        assert mean[0] == pytest.approx(13.0, abs=0.5)

    def test_dummy_trend_captures_step(self):
        """A step function at a group boundary is captured by the dummy,
        which a plain linear trend extrapolates wrongly."""
        x = np.arange(1.0, 15.0)
        y = np.where(x <= 8, 10.0, 16.0)  # step of +6 at the boundary
        trend = GroupDummyTrend(boundaries=(8, 14))
        gp = GaussianProcess(
            trend=trend, noise_var=1e-10, optimize=False,
            alpha=1e-6, kernel=Exponential(theta=1.0),
        ).fit(x, y)
        # Step coefficient recovered.
        assert gp.fit_.gamma[-1] == pytest.approx(6.0, abs=0.1)

    def test_mle_estimates_reasonable_theta(self):
        rng = np.random.default_rng(1)
        x = np.linspace(0, 10, 30)
        y = np.sin(x) + rng.normal(0, 0.01, size=30)
        gp = GaussianProcess(noise_var=1e-4, optimize=True).fit(x, y)
        assert 0.05 < gp.fit_.theta < 100.0
        assert gp.fit_.alpha > 0


class TestValidationAndAcquisition:
    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.array([1.0]))

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.array([1.0, 2.0]), np.array([1.0]))

    def test_too_few_points_for_trend(self):
        with pytest.raises(ValueError):
            GaussianProcess(trend=LinearTrend()).fit(
                np.array([1.0]), np.array([1.0])
            )

    def test_lcb_below_mean(self):
        x = np.array([1.0, 2.0, 3.0, 6.0])
        y = np.array([5.0, 4.0, 4.5, 6.0])
        gp = GaussianProcess(noise_var=0.01, optimize=False, alpha=1.0).fit(x, y)
        grid = np.linspace(1, 6, 20)
        mean, _ = gp.predict(grid)
        lcb = gp.lower_confidence_bound(grid, beta=4.0)
        assert np.all(lcb <= mean + 1e-12)

    def test_lcb_beta_zero_is_mean(self):
        x = np.array([1.0, 2.0, 4.0])
        y = np.array([1.0, 0.5, 2.0])
        gp = GaussianProcess(noise_var=0.01, optimize=False, alpha=1.0).fit(x, y)
        grid = np.array([1.5, 3.0])
        mean, _ = gp.predict(grid)
        assert np.allclose(gp.lower_confidence_bound(grid, 0.0), mean)

    def test_negative_beta_rejected(self):
        gp = GaussianProcess(noise_var=0.01, optimize=False, alpha=1.0)
        gp.fit(np.array([1.0, 2.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            gp.lower_confidence_bound(np.array([1.5]), -1.0)

    def test_include_noise_widens_sd(self):
        x = np.array([1.0, 2.0, 3.0])
        y = np.array([1.0, 2.0, 1.5])
        gp = GaussianProcess(noise_var=0.5, optimize=False, alpha=1.0).fit(x, y)
        _, sd_latent = gp.predict(np.array([2.5]))
        _, sd_obs = gp.predict(np.array([2.5]), include_noise=True)
        assert sd_obs > sd_latent
