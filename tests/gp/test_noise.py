"""Tests for the replicate-based noise estimator."""

import numpy as np
import pytest

from repro.gp import estimate_noise_variance, group_observations


class TestGroupObservations:
    def test_groups(self):
        grouped = group_observations([1, 2, 1], [10.0, 20.0, 12.0])
        assert grouped == {1.0: [10.0, 12.0], 2.0: [20.0]}

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            group_observations([1, 2], [1.0])


class TestNoiseEstimation:
    def test_fallback_without_replicates(self):
        assert estimate_noise_variance([1, 2, 3], [1.0, 2.0, 3.0], fallback=0.7) == 0.7

    def test_two_replicates(self):
        # x=5 measured twice: values 10 and 12 -> mean 11, squares 1+1=2,
        # denominator n(x) - 1 = 1 -> sigma^2 = 2.
        est = estimate_noise_variance([5, 5, 7], [10.0, 12.0, 99.0])
        assert est == pytest.approx(2.0)

    def test_ignores_singletons(self):
        with_single = estimate_noise_variance([5, 5, 7], [10.0, 12.0, 99.0])
        without = estimate_noise_variance([5, 5], [10.0, 12.0])
        assert with_single == without

    def test_converges_to_true_variance(self):
        rng = np.random.default_rng(0)
        sigma = 0.5
        xs, ys = [], []
        for x in range(5):
            for _ in range(200):
                xs.append(x)
                ys.append(3.0 * x + rng.normal(0, sigma))
        est = estimate_noise_variance(xs, ys)
        assert est == pytest.approx(sigma**2, rel=0.15)

    def test_identical_replicates_fallback(self):
        assert estimate_noise_variance([1, 1], [5.0, 5.0], fallback=0.3) == 0.3
