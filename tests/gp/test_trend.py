"""Tests for trend bases."""

import numpy as np
import pytest

from repro.gp import ConstantTrend, GroupDummyTrend, LinearTrend


class TestConstantTrend:
    def test_design_matrix(self):
        f = ConstantTrend().design_matrix(np.array([1.0, 5.0]))
        assert f.shape == (2, 1)
        assert np.allclose(f, 1.0)

    def test_n_functions(self):
        assert ConstantTrend().n_functions == 1


class TestLinearTrend:
    def test_design_matrix(self):
        f = LinearTrend().design_matrix(np.array([2.0, 4.0]))
        assert f.shape == (2, 2)
        assert np.allclose(f[:, 0], 1.0)
        assert np.allclose(f[:, 1], [2.0, 4.0])

    def test_n_functions(self):
        assert LinearTrend().n_functions == 2


class TestGroupDummyTrend:
    # Cluster 2L-6M-6S: boundaries at counts 2, 8, 14.
    @pytest.fixture
    def trend(self):
        return GroupDummyTrend(boundaries=(2, 8, 14))

    def test_group_of(self, trend):
        assert trend.group_of(1) == 0
        assert trend.group_of(2) == 0
        assert trend.group_of(3) == 1
        assert trend.group_of(8) == 1
        assert trend.group_of(9) == 2
        assert trend.group_of(14) == 2
        assert trend.group_of(99) == 2  # clamped

    def test_design_matrix_shape(self, trend):
        f = trend.design_matrix(np.arange(1, 15, dtype=float))
        assert f.shape == (14, 4)  # 1, x, d1, d2
        assert trend.n_functions == 4

    def test_dummies_are_steps(self, trend):
        f = trend.design_matrix(np.array([1.0, 2.0, 3.0, 8.0, 9.0, 14.0]))
        # d1 (group >= 1) switches on at x=3.
        assert list(f[:, 2]) == [0.0, 0.0, 1.0, 1.0, 1.0, 1.0]
        # d2 (group >= 2) switches on at x=9.
        assert list(f[:, 3]) == [0.0, 0.0, 0.0, 0.0, 1.0, 1.0]

    def test_single_group_has_no_dummies(self):
        trend = GroupDummyTrend(boundaries=(64,))
        assert trend.n_functions == 2
        f = trend.design_matrix(np.array([10.0, 64.0]))
        assert f.shape == (2, 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupDummyTrend(boundaries=())
        with pytest.raises(ValueError):
            GroupDummyTrend(boundaries=(5, 3))
        with pytest.raises(ValueError):
            GroupDummyTrend(boundaries=(0, 3))
