"""Property-based tests of GP posterior behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import Exponential, GaussianProcess, LinearTrend


def fit_gp(x, y, noise=1e-8, theta=2.0):
    return GaussianProcess(
        kernel=Exponential(theta=theta), noise_var=noise,
        optimize=False, alpha=1.0,
    ).fit(np.asarray(x, float), np.asarray(y, float))


class TestPosteriorContraction:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=500),
        new_x=st.floats(min_value=2.0, max_value=8.0),
    )
    def test_observing_a_point_reduces_its_variance(self, seed, new_x):
        rng = np.random.default_rng(seed)
        x = np.array([0.0, 1.0, 9.0, 10.0])
        y = rng.standard_normal(4)
        gp1 = fit_gp(x, y)
        _, sd_before = gp1.predict(np.array([new_x]))

        y_new = rng.standard_normal()
        gp2 = fit_gp(np.append(x, new_x), np.append(y, y_new))
        _, sd_after = gp2.predict(np.array([new_x]))
        assert sd_after[0] <= sd_before[0] + 1e-9

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=500))
    def test_adding_data_never_increases_variance_elsewhere(self, seed):
        """With fixed hyper-parameters, conditioning on more data shrinks
        posterior variance pointwise (Gaussian conditioning)."""
        rng = np.random.default_rng(seed)
        x = np.sort(rng.uniform(0, 10, size=5))
        x += np.arange(5) * 0.3
        y = rng.standard_normal(5)
        grid = np.linspace(0, 12, 25)
        gp1 = fit_gp(x, y)
        _, sd1 = gp1.predict(grid)
        extra_x, extra_y = 11.0, rng.standard_normal()
        gp2 = fit_gp(np.append(x, extra_x), np.append(y, extra_y))
        _, sd2 = gp2.predict(grid)
        assert np.all(sd2 <= sd1 + 1e-6)

    def test_replication_shrinks_noise_dominated_uncertainty(self):
        """Repeating the same noisy measurement tightens the posterior at
        that location (averaging over noise)."""
        x1 = np.array([5.0])
        gp1 = GaussianProcess(noise_var=1.0, optimize=False, alpha=1.0).fit(
            x1, np.array([2.0])
        )
        _, sd1 = gp1.predict(np.array([5.0]))
        x4 = np.array([5.0] * 4)
        gp4 = GaussianProcess(noise_var=1.0, optimize=False, alpha=1.0).fit(
            x4, np.array([2.0, 1.8, 2.2, 2.0])
        )
        _, sd4 = gp4.predict(np.array([5.0]))
        assert sd4[0] < sd1[0]


class TestPosteriorMeanProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        shift=st.floats(min_value=-100.0, max_value=100.0),
        seed=st.integers(min_value=0, max_value=200),
    )
    def test_translation_equivariance_with_trend(self, shift, seed):
        """Adding a constant to y shifts predictions by that constant."""
        rng = np.random.default_rng(seed)
        x = np.arange(1.0, 8.0)
        y = rng.standard_normal(7)
        grid = np.linspace(1, 7, 13)
        gp1 = GaussianProcess(
            trend=LinearTrend(), noise_var=1e-6, optimize=False, alpha=1.0
        ).fit(x, y)
        gp2 = GaussianProcess(
            trend=LinearTrend(), noise_var=1e-6, optimize=False, alpha=1.0
        ).fit(x, y + shift)
        m1, s1 = gp1.predict(grid)
        m2, s2 = gp2.predict(grid)
        assert np.allclose(m2, m1 + shift, atol=1e-6 * max(1, abs(shift)))
        assert np.allclose(s1, s2, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(scale=st.floats(min_value=0.1, max_value=10.0))
    def test_scale_equivariance(self, scale):
        """Scaling y scales the mean; alpha scales variance accordingly."""
        x = np.arange(1.0, 6.0)
        y = np.array([1.0, 3.0, 2.0, 5.0, 4.0])
        grid = np.array([1.5, 3.5])
        gp1 = fit_gp(x, y)
        m1, _ = gp1.predict(grid)
        gp2 = GaussianProcess(
            kernel=Exponential(theta=2.0), noise_var=1e-8,
            optimize=False, alpha=scale**2,
        ).fit(x, y * scale)
        m2, _ = gp2.predict(grid)
        assert np.allclose(m2, m1 * scale, rtol=1e-5)

    def test_2d_inputs_roundtrip(self):
        """The N-D path interpolates like the 1-D path."""
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 5, size=(8, 2))
        y = rng.standard_normal(8)
        gp = GaussianProcess(
            kernel=Exponential(theta=3.0), noise_var=1e-10,
            optimize=False, alpha=1.0,
        ).fit(x, y)
        mean, sd = gp.predict(x)
        assert np.allclose(mean, y, atol=1e-4)
        assert np.all(sd < 1e-2)
