"""Tests for GP correlation kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gp import Exponential, Gaussian, Matern52

KERNELS = [Exponential, Gaussian, Matern52]


@pytest.mark.parametrize("kernel_cls", KERNELS)
class TestKernelProperties:
    def test_unit_diagonal(self, kernel_cls):
        k = kernel_cls(theta=2.0)
        x = np.array([0.0, 1.0, 5.0])
        assert np.allclose(np.diag(k(x, x)), 1.0)

    def test_symmetry(self, kernel_cls):
        k = kernel_cls(theta=1.5)
        x = np.array([0.0, 0.7, 2.0, 3.1])
        m = k(x, x)
        assert np.allclose(m, m.T)

    def test_decay_with_distance(self, kernel_cls):
        k = kernel_cls(theta=1.0)
        d = np.array([0.0, 0.5, 1.0, 2.0, 5.0])
        c = k.correlation(d)
        assert np.all(np.diff(c) < 0)

    def test_positive_semidefinite(self, kernel_cls):
        k = kernel_cls(theta=0.8)
        x = np.linspace(0, 10, 25)
        eig = np.linalg.eigvalsh(k(x, x))
        assert eig.min() > -1e-9

    def test_theta_validation(self, kernel_cls):
        with pytest.raises(ValueError):
            kernel_cls(theta=0.0)

    def test_with_theta(self, kernel_cls):
        k = kernel_cls(theta=1.0).with_theta(3.0)
        assert isinstance(k, kernel_cls)
        assert k.theta == 3.0


class TestExponentialValues:
    def test_matches_formula(self):
        k = Exponential(theta=2.0)
        assert k.correlation(np.array([2.0]))[0] == pytest.approx(np.exp(-1.0))

    def test_longer_theta_higher_correlation(self):
        d = np.array([1.0])
        assert Exponential(theta=5.0).correlation(d) > Exponential(theta=0.5).correlation(d)

    @settings(max_examples=50, deadline=None)
    @given(
        d=st.floats(min_value=0.0, max_value=100.0),
        theta=st.floats(min_value=0.01, max_value=100.0),
    )
    def test_property_range(self, d, theta):
        c = Exponential(theta=theta).correlation(np.array([d]))[0]
        assert 0.0 <= c <= 1.0  # underflows to 0.0 at extreme d/theta


class TestRectangularShapes:
    def test_cross_correlation_shape(self):
        k = Exponential(theta=1.0)
        assert k(np.zeros(3), np.zeros(5)).shape == (3, 5)
