"""DET001 fixtures: global RNG state and wall-clock reads."""

from repro.analysis import all_rules

from .conftest import mk, run_rules

RULES = all_rules(only=["DET001"])


def findings(rel, src):
    return run_rules(RULES, mk(rel, src))


class TestNumpyGlobalState:
    def test_np_random_seed_flagged(self):
        out = findings("src/m.py", """
            import numpy as np
            np.random.seed(42)
        """)
        assert [f.rule for f in out] == ["DET001"]
        assert "hidden global RNG" in out[0].message

    def test_np_random_fns_flagged(self):
        src = """
            import numpy as np
            a = np.random.rand(3)
            b = np.random.choice([1, 2])
            c = np.random.normal(0.0, 1.0)
        """
        assert len(findings("src/m.py", src)) == 3

    def test_numpy_alias_flagged(self):
        assert findings("src/m.py", """
            import numpy
            numpy.random.shuffle(xs)
        """)

    def test_default_rng_ok(self):
        assert not findings("src/m.py", """
            import numpy as np
            rng = np.random.default_rng(0)
            x = rng.normal()
        """)

    def test_generator_annotation_ok(self):
        assert not findings("src/m.py", """
            import numpy as np

            def sample(rng: np.random.Generator) -> float:
                return float(rng.random())
        """)


class TestStdlibRandom:
    def test_module_call_flagged(self):
        out = findings("src/m.py", """
            import random
            x = random.random()
        """)
        assert out and "global state" in out[0].message

    def test_from_import_flagged(self):
        out = findings("src/m.py", """
            from random import choice
            x = choice([1, 2])
        """)
        # Both the import itself and the call are reported.
        assert len(out) == 2

    def test_unrelated_attribute_ok(self):
        assert not findings("src/m.py", """
            x = rng.random()
        """)


class TestWallClock:
    def test_time_time_flagged(self):
        out = findings("src/m.py", """
            import time
            t = time.time()
        """)
        assert out and "wall clock" in out[0].message

    def test_datetime_now_flagged(self):
        assert findings("src/m.py", """
            from datetime import datetime
            stamp = datetime.now()
        """)

    def test_perf_counter_ok(self):
        assert not findings("src/m.py", """
            import time
            t0 = time.perf_counter()
        """)


class TestScope:
    def test_only_src_is_audited(self):
        src = "import numpy as np\nnp.random.seed(0)\n"
        assert not findings("tests/m.py", src)
        assert not findings("benchmarks/m.py", src)


class TestWallClockAllowlist:
    """The single audited exemption: WallClock.wall_time, per-symbol."""

    ALLOWED = "src/repro/obs/clock.py"

    def test_wallclock_wall_time_may_read_wall_clock(self):
        assert not findings(self.ALLOWED, """
            import time
            class WallClock:
                def wall_time(self):
                    return time.time()
        """)

    def test_other_symbols_in_clock_module_still_flagged(self):
        # The exemption is per-symbol, not per-file: a module-level
        # helper (or another method) in clock.py is no longer exempt.
        assert findings(self.ALLOWED, """
            import time
            def wall_time():
                return time.time()
        """)
        assert findings(self.ALLOWED, """
            import time
            class WallClock:
                def drift(self):
                    return time.time()
        """)

    def test_same_source_elsewhere_still_flagged(self):
        src = """
            import time
            class WallClock:
                def wall_time(self):
                    return time.time()
        """
        assert findings("src/repro/obs/other.py", src)
        assert findings("src/repro/runtime/simulator.py", src)

    def test_allowlist_does_not_cover_rng(self):
        out = findings(self.ALLOWED, """
            import numpy as np
            np.random.seed(0)
        """)
        assert out and "hidden global RNG" in out[0].message

    def test_allowlist_is_a_single_audited_symbol(self):
        from repro.analysis.rules.determinism import WALL_CLOCK_ALLOWLIST

        assert WALL_CLOCK_ALLOWLIST == {
            self.ALLOWED: frozenset({"WallClock.wall_time"}),
        }


class TestFastEngineIdioms:
    """Fixture pair for the wave-batched fast engine's RNG discipline.

    The fast path replays the reference's jitter stream, so the one
    thing DET001 must keep out of it is hidden global RNG state: the
    positive fixture is the tempting-but-wrong way to jitter a batched
    plan, the negative one is the engine's actual idiom (a per-run
    seeded Generator plus monotonic timing in the bench layer).
    """

    MODULE = "src/repro/runtime/simfast.py"

    def test_global_rng_jitter_in_engine_flagged(self):
        out = findings(self.MODULE, """
            import numpy as np

            def run_plan(plan, jitter_sd):
                np.random.seed(plan.seed)
                return np.random.normal(0.0, jitter_sd, plan.n_tasks)
        """)
        assert [f.rule for f in out] == ["DET001", "DET001"]

    def test_seeded_generator_and_perf_counter_ok(self):
        assert not findings(self.MODULE, """
            import time

            import numpy as np

            def run_plan(plan, jitter_sd, seed):
                t0 = time.perf_counter()
                rng = np.random.default_rng(seed)
                noise = rng.normal(0.0, jitter_sd, plan.n_tasks)
                return noise, time.perf_counter() - t0
        """)
