"""Tests for the ``python -m repro.analysis`` command line."""

import io
import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.cli import find_root, main

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def project(tmp_path):
    """A miniature repo with one clean and one offending file."""
    (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
    src = tmp_path / "src"
    src.mkdir()
    (src / "clean.py").write_text("x = 1\n")
    (src / "bad.py").write_text("def f(xs=[]):\n    return xs\n")
    return tmp_path


def run(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestFindRoot:
    def test_walks_up_to_pyproject(self, project):
        nested = project / "src"
        assert find_root(nested) == project

    def test_falls_back_to_start(self, tmp_path):
        assert find_root(tmp_path) == tmp_path.resolve()


class TestMain:
    def test_findings_exit_1(self, project):
        code, out = run(["--root", str(project)])
        assert code == 1
        assert "MUT001" in out and "src/bad.py" in out

    def test_clean_tree_exit_0(self, project):
        (project / "src" / "bad.py").unlink()
        code, out = run(["--root", str(project)])
        assert code == 0
        assert "0 findings" in out

    def test_warning_passes_default_fails_strict(self, project):
        (project / "src" / "bad.py").write_text("ok = x == 0.5\n")
        assert run(["--root", str(project)])[0] == 0
        assert run(["--root", str(project), "--strict"])[0] == 1

    def test_json_format(self, project):
        code, out = run(["--root", str(project), "--format", "json"])
        payload = json.loads(out)
        assert payload["exit_code"] == code == 1
        assert payload["findings"][0]["rule"] == "MUT001"

    def test_write_baseline_then_strict_green(self, project):
        code, _ = run(["--root", str(project), "--write-baseline"])
        assert code == 0
        assert (project / "analysis-baseline.json").exists()
        code, out = run(["--root", str(project), "--strict"])
        assert code == 0
        assert "1 baselined" in out

    def test_stale_baseline_fails_strict(self, project):
        run(["--root", str(project), "--write-baseline"])
        (project / "src" / "bad.py").write_text("x = 1\n")
        code, out = run(["--root", str(project), "--strict"])
        assert code == 1
        assert "stale" in out

    def test_no_baseline_flag(self, project):
        run(["--root", str(project), "--write-baseline"])
        assert run(["--root", str(project), "--no-baseline"])[0] == 1

    def test_select(self, project):
        code, out = run(["--root", str(project), "--select", "FLT001"])
        assert code == 0  # MUT001 not selected

    def test_unknown_select_is_usage_error(self, project):
        assert run(["--root", str(project), "--select", "NOPE1"])[0] == 2

    def test_list_rules(self):
        code, out = run(["--list-rules"])
        assert code == 0
        for rule_id in ("DET001", "STRAT001", "FLT001", "MUT001",
                        "EXC001", "REG001"):
            assert rule_id in out

    def test_explicit_paths(self, project):
        code, out = run(["src/clean.py", "--root", str(project)])
        assert code == 0


class TestErrorPaths:
    def test_nonexistent_explicit_path_is_usage_error(self, project, capsys):
        code, _ = run(["src/gone.py", "--root", str(project)])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_unreadable_file_reports_parse000(self, project):
        bad = project / "src" / "binary.py"
        bad.write_bytes(b"\xff\xfe\x00garbage\x00")
        (project / "src" / "bad.py").unlink()
        code, out = run(["--root", str(project)])
        assert code == 1
        assert "PARSE000" in out and "unreadable" in out

    def test_syntax_error_reports_parse000(self, project):
        (project / "src" / "bad.py").write_text("def broken(:\n")
        code, out = run(["--root", str(project)])
        assert code == 1
        assert "PARSE000" in out

    def test_malformed_baseline_json_is_usage_error(self, project, capsys):
        (project / "analysis-baseline.json").write_text("{not json")
        code, _ = run(["--root", str(project)])
        assert code == 2
        assert "bad baseline file" in capsys.readouterr().err

    def test_empty_root_is_usage_error(self, tmp_path, capsys):
        (tmp_path / "pyproject.toml").write_text("[project]\nname='x'\n")
        code, _ = run(["--root", str(tmp_path)])
        assert code == 2
        assert "nothing to analyze" in capsys.readouterr().err


class TestStaleSuppressions:
    def test_stale_entry_fails_default_mode_with_guidance(self, project):
        run(["--root", str(project), "--write-baseline"])
        (project / "src" / "bad.py").write_text("x = 1\n")
        code, out = run(["--root", str(project)])
        assert code == 1
        assert "stale suppression" in out
        assert "--prune-baseline" in out

    def test_prune_baseline_round_trip(self, project):
        run(["--root", str(project), "--write-baseline"])
        (project / "src" / "bad.py").write_text("x = 1\n")
        code, out = run(["--root", str(project), "--prune-baseline"])
        assert code == 0
        assert "pruned 1 stale entry" in out
        baseline = json.loads(
            (project / "analysis-baseline.json").read_text())
        assert baseline["entries"] == []
        assert run(["--root", str(project), "--strict"])[0] == 0

    def test_prune_keeps_live_entries(self, project):
        run(["--root", str(project), "--write-baseline"])
        code, out = run(["--root", str(project), "--prune-baseline"])
        assert code == 0
        assert "kept 1" in out
        assert run(["--root", str(project), "--strict"])[0] == 0


class TestFlowFlags:
    def test_flow_enables_opt_in_rules(self, project):
        (project / "src" / "bad.py").write_text(
            "import numpy as np\n\n"
            "def make_rng():\n"
            "    return np.random.default_rng()\n"
        )
        assert run(["--root", str(project)])[0] == 0
        code, out = run(["--root", str(project), "--flow"])
        assert code == 1
        assert "DET010" in out

    def test_list_rules_marks_opt_in(self):
        _, out = run(["--list-rules", "--flow"])
        assert "DET010" in out and "(opt-in)" in out

    def test_graph_artifact(self, project, tmp_path):
        target = tmp_path / "callgraph.json"
        code, out = run(["--root", str(project), "--graph", str(target),
                         "src/clean.py"])
        payload = json.loads(target.read_text())
        assert payload["version"] == 1
        assert "functions" in payload and "edges" in payload

    def test_purity_artifact(self, project, tmp_path):
        (project / "src" / "bad.py").unlink()
        target = tmp_path / "purity.json"
        code, out = run(["--root", str(project), "--write-purity",
                         str(target)])
        assert code == 0
        payload = json.loads(target.read_text())
        assert payload["version"] == 1
        assert "hot_path" in payload

    def test_artifacts_need_src_modules(self, project, tmp_path, capsys):
        tests_dir = project / "tests"
        tests_dir.mkdir()
        (tests_dir / "test_x.py").write_text("def test_a():\n    pass\n")
        code, _ = run(["--root", str(project), "--graph",
                       str(tmp_path / "g.json"), "tests"])
        assert code == 2
        assert "need src/" in capsys.readouterr().err


class TestSarifFormat:
    def test_sarif_output_parses_and_carries_findings(self, project):
        code, out = run(["--root", str(project), "--format", "sarif"])
        assert code == 1
        doc = json.loads(out)
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert any(r["ruleId"] == "MUT001" for r in results)


class TestModuleEntryPoint:
    def test_python_dash_m_strict_on_repo(self):
        if not (REPO_ROOT / "pyproject.toml").exists():
            pytest.skip("repo root not found")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--strict"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
