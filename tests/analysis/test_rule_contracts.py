"""STRAT001/2/3 fixtures: the strategy-contract linter."""

from repro.analysis import all_rules

from .conftest import mk, run_rules

RULES = all_rules(only=["STRAT001"])


def findings(*modules):
    return run_rules(RULES, *modules)


class TestNextAction:
    def test_missing_next_action_flagged(self, strategy_base):
        out = findings(strategy_base, mk("src/pkg/strategies/broken.py", """
            class BrokenStrategy(Strategy):
                def __post_init__(self):
                    super().__post_init__()
                    self.name = "Broken"
        """))
        assert [f.rule for f in out] == ["STRAT001"]
        assert "BrokenStrategy" in out[0].message

    def test_inherited_from_concrete_parent_ok(self, strategy_base):
        assert not findings(strategy_base, mk("src/pkg/strategies/ok.py", """
            class ParentStrategy(Strategy):
                def __post_init__(self):
                    super().__post_init__()
                    self.name = "Parent"

                def _next_action(self):
                    return 1

            class ChildStrategy(ParentStrategy):
                def __post_init__(self):
                    super().__post_init__()
                    self.name = "Child"
        """))

    def test_abstract_intermediate_exempt(self, strategy_base):
        # A subclass whose own _next_action is a NotImplementedError stub
        # is an abstract intermediate, not a violation.
        assert not findings(strategy_base, mk("src/pkg/strategies/abs.py", """
            class AbstractMixinStrategy(Strategy):
                def __post_init__(self):
                    super().__post_init__()
                    self.name = "abstract"

                def _next_action(self):
                    raise NotImplementedError
        """))


class TestName:
    def test_missing_name_flagged(self, strategy_base):
        out = findings(strategy_base, mk("src/pkg/strategies/anon.py", """
            class AnonStrategy(Strategy):
                def _next_action(self):
                    return 1
        """))
        assert [f.rule for f in out] == ["STRAT002"]

    def test_name_set_by_ancestor_ok(self, strategy_base):
        assert not findings(strategy_base, mk("src/pkg/strategies/ok.py", """
            class NamedStrategy(Strategy):
                def __post_init__(self):
                    super().__post_init__()
                    self.name = "Named"

                def _next_action(self):
                    return 1

            class SubStrategy(NamedStrategy):
                pass
        """))


class TestSuperPostInit:
    def test_missing_super_call_flagged(self, strategy_base):
        out = findings(strategy_base, mk("src/pkg/strategies/drop.py", """
            class DropStrategy(Strategy):
                def __post_init__(self):
                    self.name = "Drop"

                def _next_action(self):
                    return 1
        """))
        assert [f.rule for f in out] == ["STRAT003"]
        assert "super().__post_init__" in out[0].message

    def test_no_post_init_defined_ok(self, strategy_base):
        # Not defining __post_init__ at all inherits the parent's: fine.
        assert not findings(strategy_base, mk("src/pkg/strategies/ok.py", """
            class QuietStrategy(Strategy):
                def _next_action(self):
                    return 1

                def other(self):
                    self.name = "Quiet"
        """))


class TestScope:
    def test_non_strategy_classes_ignored(self, strategy_base):
        assert not findings(strategy_base, mk("src/pkg/other.py", """
            class Helper:
                def __post_init__(self):
                    self.name = "not a strategy"
        """))

    def test_rule_skipped_outside_src(self):
        assert not findings(mk("tests/fake.py", """
            class Strategy:
                def _next_action(self):
                    raise NotImplementedError

            class NoNameStrategy(Strategy):
                def _next_action(self):
                    return 1
        """))
