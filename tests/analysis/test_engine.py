"""Tests for the engine: collection, scoping, suppression, parse errors."""

import pytest

from repro.analysis import Analyzer, Baseline, all_rules
from repro.analysis.engine import collect_files, register, Rule

from .conftest import mk, run_rules


class TestRuleRegistry:
    def test_all_rules_nonempty_and_sorted(self):
        rules = all_rules()
        ids = [r.id for r in rules]
        assert ids == sorted(ids)
        assert {"DET001", "STRAT001", "FLT001", "MUT001", "EXC001",
                "REG001"} <= set(ids)

    def test_select_subset(self):
        rules = all_rules(only=["FLT001"])
        assert [r.id for r in rules] == ["FLT001"]

    def test_unknown_id_raises(self):
        with pytest.raises(ValueError, match="unknown rule ids"):
            all_rules(only=["NOPE999"])

    def test_register_rejects_duplicates_and_blank_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            @register
            class Clone(Rule):
                id = "FLT001"

        with pytest.raises(ValueError, match="non-empty id"):
            @register
            class Blank(Rule):
                pass


class TestScoping:
    def test_src_scoped_rule_skips_tests_dir(self):
        rules = all_rules(only=["DET001"])
        bad = "import numpy as np\nnp.random.seed(0)\n"
        assert run_rules(rules, mk("src/m.py", bad))
        assert not run_rules(rules, mk("tests/m.py", bad))


class TestSuppression:
    def test_inline_disable_specific_rule(self):
        rules = all_rules(only=["FLT001"])
        src = "ok = x == 0.5  # repro-lint: disable=FLT001\n"
        assert not run_rules(rules, mk("src/m.py", src))

    def test_inline_disable_all(self):
        rules = all_rules(only=["FLT001"])
        src = "ok = x == 0.5  # repro-lint: disable-all\n"
        assert not run_rules(rules, mk("src/m.py", src))

    def test_disable_other_rule_does_not_suppress(self):
        rules = all_rules(only=["FLT001"])
        src = "bad = x == 0.5  # repro-lint: disable=DET001\n"
        assert run_rules(rules, mk("src/m.py", src))


class TestRunPaths:
    def test_collects_and_reports(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "ok.py").write_text("x = 1\n")
        (tmp_path / "src" / "bad.py").write_text("if x == 0.5:\n    pass\n")
        report = Analyzer(baseline=Baseline()).run_paths(tmp_path, ["src"])
        assert report.files_analyzed == 2
        assert [f.rule for f in report.findings] == ["FLT001"]
        assert report.findings[0].path == "src/bad.py"

    def test_syntax_error_becomes_finding(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "broken.py").write_text("def f(:\n")
        report = Analyzer(baseline=Baseline()).run_paths(tmp_path, ["src"])
        assert [f.rule for f in report.findings] == ["PARSE000"]
        assert report.exit_code() == 1

    def test_skip_dirs(self, tmp_path):
        cache = tmp_path / "src" / "__pycache__"
        cache.mkdir(parents=True)
        (cache / "junk.py").write_text("if x == 0.5: pass\n")
        files = collect_files(tmp_path, ["src"])
        assert files == []

    def test_single_file_target(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        assert collect_files(tmp_path, ["one.py"]) == [target]
