"""The analyzer runs clean over this repository (the CI gate, in-tree).

This is the acceptance criterion of the subsystem: every finding in
``src/``, ``tests/`` and ``benchmarks/`` is either fixed or carries an
explicit baseline entry with a written reason, and the committed
baseline contains no stale entries.
"""

import json
from pathlib import Path

import pytest

from repro.analysis import all_rules, run_analysis
from repro.analysis.baseline import Baseline, DEFAULT_BASELINE_NAME

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def report():
    if not (REPO_ROOT / "pyproject.toml").exists():
        pytest.skip("repo root not found (installed-package run)")
    return run_analysis(REPO_ROOT)


class TestSelfHost:
    def test_repo_is_clean(self, report):
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.findings == [], f"non-baselined findings:\n{rendered}"

    def test_no_stale_baseline_entries(self, report):
        assert report.stale_baseline == []

    def test_strict_exit_code_is_zero(self, report):
        assert report.exit_code(strict=True) == 0

    def test_corpus_was_actually_analyzed(self, report):
        # Guard against a silently-empty run "passing".
        assert report.files_analyzed > 100
        assert report.rules_run >= 6

    def test_baseline_entries_all_have_reasons(self):
        baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
        for entry in baseline.entries:
            assert entry.reason.strip(), (
                f"baseline entry {entry.fingerprint} has no reason"
            )


@pytest.fixture(scope="module")
def flow_report():
    if not (REPO_ROOT / "pyproject.toml").exists():
        pytest.skip("repo root not found (installed-package run)")
    return run_analysis(REPO_ROOT, rules=all_rules(include_opt_in=True))


class TestFlowSelfHost:
    """The interprocedural rules also run clean over this repository."""

    def test_repo_is_flow_clean(self, flow_report):
        rendered = "\n".join(f.render() for f in flow_report.findings)
        assert flow_report.findings == [], (
            f"non-baselined flow findings:\n{rendered}"
        )

    def test_flow_rules_actually_ran(self, flow_report):
        assert flow_report.rules_run >= 13


class TestPurityArtifact:
    """The committed analysis-purity.json matches a fresh inference run
    and proves the simulator hot path clean."""

    @pytest.fixture(scope="class")
    def fresh(self):
        if not (REPO_ROOT / "pyproject.toml").exists():
            pytest.skip("repo root not found (installed-package run)")
        from repro.analysis.engine import Analyzer
        from repro.analysis.flow import FlowContext, purity_to_json

        analyzer = Analyzer(rules=[])
        analyzer.run_paths(REPO_ROOT, ["src"])
        src_modules = [m for m in analyzer.modules if m.scope == "src"]
        ctx = FlowContext.for_modules(analyzer.shared, src_modules)
        return purity_to_json(ctx.purity)

    def test_committed_artifact_is_current(self, fresh):
        committed = json.loads(
            (REPO_ROOT / "analysis-purity.json").read_text())
        assert committed == fresh, (
            "analysis-purity.json is stale; regenerate with "
            "`repro lint --write-purity analysis-purity.json src`"
        )

    def test_hot_path_is_clean(self, fresh):
        hot = fresh["hot_path"]
        assert hot["root"] == "repro.runtime.simulator.Simulator.run"
        assert hot["clean"] is True
        assert hot["violations"] == []
        assert len(hot["closure"]) >= 5
