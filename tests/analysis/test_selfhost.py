"""The analyzer runs clean over this repository (the CI gate, in-tree).

This is the acceptance criterion of the subsystem: every finding in
``src/``, ``tests/`` and ``benchmarks/`` is either fixed or carries an
explicit baseline entry with a written reason, and the committed
baseline contains no stale entries.
"""

from pathlib import Path

import pytest

from repro.analysis import run_analysis
from repro.analysis.baseline import Baseline, DEFAULT_BASELINE_NAME

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def report():
    if not (REPO_ROOT / "pyproject.toml").exists():
        pytest.skip("repo root not found (installed-package run)")
    return run_analysis(REPO_ROOT)


class TestSelfHost:
    def test_repo_is_clean(self, report):
        rendered = "\n".join(f.render() for f in report.findings)
        assert report.findings == [], f"non-baselined findings:\n{rendered}"

    def test_no_stale_baseline_entries(self, report):
        assert report.stale_baseline == []

    def test_strict_exit_code_is_zero(self, report):
        assert report.exit_code(strict=True) == 0

    def test_corpus_was_actually_analyzed(self, report):
        # Guard against a silently-empty run "passing".
        assert report.files_analyzed > 100
        assert report.rules_run >= 6

    def test_baseline_entries_all_have_reasons(self):
        baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
        for entry in baseline.entries:
            assert entry.reason.strip(), (
                f"baseline entry {entry.fingerprint} has no reason"
            )
