"""REG001/REG002 fixtures: the registry-coverage check."""

from repro.analysis import all_rules

from .conftest import mk, run_rules

RULES = all_rules(only=["REG001"])

BASE = """
    class Strategy:
        def _next_action(self):
            raise NotImplementedError

    class GoodStrategy(Strategy):
        def _next_action(self):
            return 1
"""


def registry(*entries):
    lines = ["_REGISTRY = {"] + [f"    {e}" for e in entries] + ["}"]
    return mk("src/pkg/strategies/registry.py", "\n".join(lines) + "\n")


class TestUnregistered:
    def test_unregistered_concrete_strategy_flagged(self):
        out = run_rules(
            RULES,
            mk("src/pkg/strategies/base.py", BASE + """
    class ForgottenStrategy(Strategy):
        def _next_action(self):
            return 2
"""),
            registry('"Good": lambda space, seed: GoodStrategy(space, seed),'),
        )
        assert [f.rule for f in out] == ["REG001"]
        assert "ForgottenStrategy" in out[0].message

    def test_fully_registered_ok(self):
        out = run_rules(
            RULES,
            mk("src/pkg/strategies/base.py", BASE),
            registry('"Good": lambda space, seed: GoodStrategy(space, seed),'),
        )
        assert out == []

    def test_oracle_exempt(self):
        out = run_rules(
            RULES,
            mk("src/pkg/strategies/base.py", BASE + """
    class OracleStrategy(Strategy):
        def _next_action(self):
            return 3
"""),
            registry('"Good": lambda space, seed: GoodStrategy(space, seed),'),
        )
        assert out == []

    def test_abstract_intermediate_not_required(self):
        out = run_rules(
            RULES,
            mk("src/pkg/strategies/base.py", BASE + """
    class AbstractStrategy(Strategy):
        def _next_action(self):
            raise NotImplementedError
"""),
            registry('"Good": lambda space, seed: GoodStrategy(space, seed),'),
        )
        assert out == []


class TestDangling:
    def test_registry_entry_for_missing_class_flagged(self):
        out = run_rules(
            RULES,
            mk("src/pkg/strategies/base.py", BASE),
            registry(
                '"Good": lambda space, seed: GoodStrategy(space, seed),',
                '"Gone": lambda space, seed: DeletedStrategy(space, seed),',
            ),
        )
        assert [f.rule for f in out] == ["REG002"]
        assert "DeletedStrategy" in out[0].message

    def test_strategies_outside_package_ignored(self):
        out = run_rules(
            RULES,
            mk("src/pkg/strategies/base.py", BASE),
            registry('"Good": lambda space, seed: GoodStrategy(space, seed),'),
            mk("src/pkg/other/extra.py", """
    class Strategy:
        def _next_action(self):
            raise NotImplementedError

    class ElsewhereStrategy(Strategy):
        def _next_action(self):
            return 9
"""),
        )
        assert out == []

    def test_no_registry_module_no_findings(self):
        assert run_rules(RULES, mk("src/pkg/strategies/base.py", BASE)) == []
