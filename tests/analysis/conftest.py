"""Shared fixtures for analysis tests: in-memory corpora and runners."""

import textwrap

import pytest

from repro.analysis import Analyzer, Baseline, parse_source


def mk(rel, source):
    """Parse a dedented in-memory module at a pretend path."""
    return parse_source(textwrap.dedent(source), rel)


def run_rules(rules, *modules):
    """Run the given rule instances over in-memory modules."""
    report = Analyzer(rules=rules, baseline=Baseline()).run(list(modules))
    return report.findings


@pytest.fixture
def strategy_base():
    """A minimal stand-in for src/repro/strategies/base.py."""
    return mk("src/pkg/strategies/base.py", """
        class Strategy:
            def __post_init__(self):
                self.rng = object()

            def _next_action(self):
                raise NotImplementedError
    """)
