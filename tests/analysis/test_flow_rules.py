"""Flow-rule fixtures: positive and negative cases for DET010-DET013,
PURE001, and POOL001/POOL002."""

from repro.analysis import all_rules

from .conftest import mk, run_rules


def findings(rule_id, *modules):
    rules = all_rules(only=[rule_id])
    return run_rules(rules, *(mk(rel, src) for rel, src in modules))


class TestDet010UnseededRngReachesSimulation:
    def test_positive_unseeded_on_hot_path(self):
        out = findings("DET010", ("src/pkg/sim.py", """
            import numpy as np

            def run_cell_trace(cell):
                return cell

            def driver(cells):
                rng = np.random.default_rng()
                return [run_cell_trace(c) for c in cells]
        """))
        assert [f.rule for f in out] == ["DET010"]
        assert "unseeded" in out[0].message

    def test_positive_unseeded_escapes_via_return(self):
        out = findings("DET010", ("src/pkg/util.py", """
            import numpy as np

            def make_rng():
                return np.random.default_rng()
        """))
        assert [f.rule for f in out] == ["DET010"]
        assert "escapes" in out[0].message

    def test_negative_seeded_on_hot_path(self):
        out = findings("DET010", ("src/pkg/sim.py", """
            import numpy as np

            def run_cell_trace(cell):
                return cell

            def driver(cells, base_seed):
                rng = np.random.default_rng(base_seed)
                return [run_cell_trace(c) for c in cells]
        """))
        assert out == []

    def test_negative_unseeded_off_path_not_escaping(self):
        out = findings("DET010", ("src/pkg/scratch.py", """
            import numpy as np

            def local_noise():
                rng = np.random.default_rng()
                rng.normal()
        """))
        assert out == []


class TestDet011RngCrossesPoolBoundary:
    def test_positive_generator_in_map_args(self):
        out = findings("DET011", ("src/pkg/par.py", """
            from concurrent.futures import ProcessPoolExecutor
            import numpy as np

            def work(pair):
                return pair

            def go(items, seed):
                rng = np.random.default_rng(seed)
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, [(i, rng) for i in items]))
        """))
        assert [f.rule for f in out] == ["DET011"]
        assert "pool boundary" in out[0].message

    def test_positive_generator_in_initargs(self):
        out = findings("DET011", ("src/pkg/par.py", """
            from concurrent.futures import ProcessPoolExecutor
            import numpy as np

            def _init(rng):
                pass

            def work(item):
                return item

            def go(items, seed):
                rng = np.random.default_rng(seed)
                with ProcessPoolExecutor(
                    initializer=_init, initargs=(rng,)
                ) as pool:
                    return list(pool.map(work, items))
        """))
        assert any("initargs" in f.message for f in out)

    def test_negative_seed_crosses_instead(self):
        out = findings("DET011", ("src/pkg/par.py", """
            from concurrent.futures import ProcessPoolExecutor

            def work(item):
                return item

            def go(items, base_seed):
                with ProcessPoolExecutor(
                    initializer=None, initargs=(base_seed,)
                ) as pool:
                    return list(pool.map(work, items))
        """))
        assert out == []


class TestDet012WallClockFlow:
    def test_positive_direct_and_laundered(self):
        out = findings("DET012", ("src/pkg/m.py", """
            import time

            def stamp():
                return time.time()

            def report():
                started = stamp()
                return started
        """))
        rules = [f.rule for f in out]
        assert rules == ["DET012", "DET012"]
        assert any("direct wall-clock read" in f.message for f in out)
        assert any("through" in f.message for f in out)

    def test_negative_audited_symbols(self):
        out = findings(
            "DET012",
            ("src/repro/obs/clock.py", """
                import time

                class WallClock:
                    def wall_time(self):
                        return time.time()
            """),
            ("src/repro/obs/ledger.py", """
                def make_entry(clock):
                    return {"recorded_at": clock.wall_time()}

                def record(clock, rows):
                    rows.append(make_entry(clock))
            """),
        )
        assert out == []

    def test_negative_monotonic_timers_are_fine(self):
        out = findings("DET012", ("src/pkg/m.py", """
            import time

            def measure():
                return time.perf_counter()
        """))
        assert out == []


class TestDet013SetIterationReachesArtifact:
    def test_positive_set_iteration_before_serialization(self):
        out = findings("DET013", ("src/pkg/m.py", """
            import json

            def export(items):
                out = []
                for item in {i for i in items}:
                    out.append(item)
                return json.dumps(out)
        """))
        assert [f.rule for f in out] == ["DET013"]
        assert "sorted()" in out[0].message

    def test_positive_listcomp_over_set(self):
        out = findings("DET013", ("src/pkg/m.py", """
            import json

            def export(items):
                seen = set(items)
                return json.dumps([i for i in seen])
        """))
        assert [f.rule for f in out] == ["DET013"]

    def test_negative_sorted_dominates(self):
        out = findings("DET013", ("src/pkg/m.py", """
            import json

            def export(items):
                out = []
                for item in sorted({i for i in items}):
                    out.append(item)
                return json.dumps(out)
        """))
        assert out == []

    def test_negative_no_serialization_sink(self):
        out = findings("DET013", ("src/pkg/m.py", """
            def total(items):
                acc = 0
                for item in {i for i in items}:
                    acc += item
                return acc
        """))
        assert out == []


class TestPure001HotPathPurity:
    def test_positive_io_in_run_closure(self):
        out = findings("PURE001", ("src/repro/runtime/simulator.py", """
            def log_step(x):
                print(x)
                return x

            class Simulator:
                def run(self):
                    return log_step(1)
        """))
        assert [f.rule for f in out] == ["PURE001"]
        assert "hot path" in out[0].message

    def test_positive_global_mutation_in_run_closure(self):
        out = findings("PURE001", ("src/repro/runtime/simulator.py", """
            _CACHE = {}

            def remember(k, v):
                _CACHE[k] = v
                return v

            class Simulator:
                def run(self):
                    return remember("a", 1)
        """))
        assert [f.rule for f in out] == ["PURE001"]

    def test_negative_pure_closure(self):
        out = findings("PURE001", ("src/repro/runtime/simulator.py", """
            def step(x):
                return x + 1

            class Simulator:
                def run(self):
                    return step(1)
        """))
        assert out == []

    def test_negative_io_outside_closure(self):
        out = findings("PURE001", ("src/repro/runtime/simulator.py", """
            def export(x):
                print(x)

            class Simulator:
                def run(self):
                    return 1
        """))
        assert out == []


class TestPurityFixpointConvergence:
    def test_call_cycles_keep_evidence_bounded(self):
        # Regression: evidence tags used to be re-wrapped per hop
        # ("via f: via f: ..."), so any call cycle touching an IO
        # function grew the evidence lists exponentially until the
        # pass guard.  Root-cause tags keep the tag space finite.
        from repro.analysis.flow.context import FlowContext

        module = mk("src/pkg/m.py", """
            def writer(x):
                print(x)
                return x

            def rec(x):
                if x:
                    return rec(x - 1)
                return writer(x)

            def ping(x):
                return pong(writer(x))

            def pong(x):
                return ping(x - 1) if x else x
        """)
        ctx = FlowContext.for_modules(None, [module])
        report = ctx.purity
        for name in ("rec", "ping", "pong"):
            fp = report.functions[f"pkg.m.{name}"]
            assert fp.transitive == "io"
            assert len(fp.io) <= 4
            for tag in fp.io:
                assert tag.count("via ") <= 1


class TestPool001Picklable:
    def test_positive_lambda(self):
        out = findings("POOL001", ("src/pkg/m.py", """
            from concurrent.futures import ProcessPoolExecutor

            def go(items):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(lambda x: x + 1, items))
        """))
        assert [f.rule for f in out] == ["POOL001"]
        assert "lambda" in out[0].message

    def test_positive_nested_function(self):
        out = findings("POOL001", ("src/pkg/m.py", """
            from concurrent.futures import ProcessPoolExecutor

            def go(items):
                def work(x):
                    return x + 1
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, items))
        """))
        assert [f.rule for f in out] == ["POOL001"]
        assert "nested" in out[0].message

    def test_negative_module_level_function(self):
        out = findings("POOL001", ("src/pkg/m.py", """
            from concurrent.futures import ProcessPoolExecutor

            def work(x):
                return x + 1

            def go(items):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, items))
        """))
        assert out == []


class TestPool002StatefulArgs:
    def test_positive_stateful_bank_shipped(self):
        out = findings("POOL002", ("src/pkg/m.py", """
            from concurrent.futures import ProcessPoolExecutor

            class Bank:
                def reset(self):
                    pass

            def work(bank):
                return bank

            def go():
                bank = Bank()
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, [bank]))
        """))
        assert [f.rule for f in out] == ["POOL002"]
        assert "reset()" in out[0].message

    def test_negative_stateless_payload(self):
        out = findings("POOL002", ("src/pkg/m.py", """
            from concurrent.futures import ProcessPoolExecutor

            class Row:
                pass

            def work(row):
                return row

            def go():
                row = Row()
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, [row]))
        """))
        assert out == []
