"""MUT001 / EXC001 fixtures: hygiene rules."""

from repro.analysis import all_rules

from .conftest import mk, run_rules


def findings(rule, src, rel="src/m.py"):
    return run_rules(all_rules(only=[rule]), mk(rel, src))


class TestMutableDefaults:
    def test_list_literal_flagged(self):
        out = findings("MUT001", "def f(xs=[]):\n    return xs\n")
        assert [f.rule for f in out] == ["MUT001"]
        assert "f()" in out[0].message

    def test_dict_set_and_constructor_flagged(self):
        src = (
            "def f(a={}, b=set(), c=list()):\n"
            "    return a, b, c\n"
        )
        assert len(findings("MUT001", src)) == 3

    def test_kwonly_default_flagged(self):
        assert findings("MUT001", "def f(*, acc=[]):\n    return acc\n")

    def test_none_default_ok(self):
        assert not findings("MUT001", "def f(xs=None):\n    return xs\n")

    def test_tuple_and_frozen_ok(self):
        assert not findings(
            "MUT001", "def f(xs=(), y=1, name='x'):\n    return xs\n"
        )

    def test_constructor_with_args_ok(self):
        # dict(a=1) builds a fresh value but is still shared; however a
        # non-empty constructor usually signals a deliberate constant —
        # the rule keeps to the unambiguous empty forms.
        assert not findings("MUT001", "def f(x=dict(a=1)):\n    return x\n")

    def test_applies_everywhere(self):
        src = "def f(xs=[]):\n    return xs\n"
        assert findings("MUT001", src, rel="tests/test_m.py")
        assert findings("MUT001", src, rel="benchmarks/bench_m.py")


class TestBareExcept:
    def test_bare_except_flagged(self):
        out = findings(
            "EXC001", "try:\n    x()\nexcept:\n    pass\n"
        )
        assert [f.rule for f in out] == ["EXC001"]

    def test_typed_except_ok(self):
        assert not findings(
            "EXC001", "try:\n    x()\nexcept ValueError:\n    pass\n"
        )

    def test_exception_base_ok(self):
        # `except Exception` is allowed (it spares KeyboardInterrupt).
        assert not findings(
            "EXC001", "try:\n    x()\nexcept Exception as e:\n    raise\n"
        )
