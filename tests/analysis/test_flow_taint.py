"""Taint-engine fixtures: sources, sanitizers, summaries, seeds."""

import ast

from repro.analysis.flow import TaintEngine, build_callgraph
from repro.analysis.flow.taint import (
    RNG,
    SET_ORDER,
    STATEFUL,
    UNSEEDED,
    WALLCLOCK,
    seed_derived,
)

from .conftest import mk


def engine(*modules):
    parsed = [mk(rel, src) for rel, src in modules]
    return TaintEngine(build_callgraph(parsed), parsed)


class TestSeedDerived:
    def _args(self, expr):
        call = ast.parse(expr).body[0].value
        return list(call.args)

    def test_no_args_is_unseeded(self):
        assert not seed_derived(self._args("f()"), set())

    def test_seed_name_mention(self):
        assert seed_derived(self._args("f(base_seed + 1)"), set())

    def test_seed_attribute_mention(self):
        assert seed_derived(self._args("f((cfg.seed, 7, idx))"), set())

    def test_constant_only(self):
        assert seed_derived(self._args("f(12345)"), set())

    def test_derive_cell_seed_call(self):
        assert seed_derived(
            self._args("f(derive_cell_seed(s, rep, 0))"), set()
        )

    def test_arbitrary_variable_is_not_a_seed(self):
        assert not seed_derived(self._args("f(rep_index)"), set())

    def test_seedlike_env_vars_count(self):
        assert seed_derived(self._args("f(derived)"), {"derived"})


class TestSources:
    def test_unseeded_rng_site_recorded(self):
        eng = engine(("src/pkg/m.py", """
            import numpy as np

            def make():
                rng = np.random.default_rng()
                return rng
        """))
        analysis = eng.analysis("pkg.m.make")
        assert [s.seeded for s in analysis.rng_sites] == [False]
        assert {RNG, UNSEEDED} <= eng.summary("pkg.m.make").returns

    def test_seeded_rng_site(self):
        eng = engine(("src/pkg/m.py", """
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed)
        """))
        analysis = eng.analysis("pkg.m.make")
        assert [s.seeded for s in analysis.rng_sites] == [True]
        summary = eng.summary("pkg.m.make")
        assert RNG in summary.returns
        assert UNSEEDED not in summary.returns

    def test_wallclock_source_and_interprocedural_summary(self):
        eng = engine(("src/pkg/m.py", """
            import time

            def stamp():
                return time.time()

            def launder():
                return stamp()
        """))
        assert WALLCLOCK in eng.summary("pkg.m.stamp").returns
        assert WALLCLOCK in eng.summary("pkg.m.launder").returns
        assert len(eng.analysis("pkg.m.stamp").wallclock_calls) == 1
        assert len(eng.analysis("pkg.m.launder").tainted_source_calls) == 1

    def test_stateful_class_construction(self):
        eng = engine(("src/pkg/m.py", """
            class Bank:
                def reset(self):
                    pass

            def make():
                return Bank()
        """))
        assert STATEFUL in eng.summary("pkg.m.make").returns

    def test_plain_class_is_not_stateful(self):
        eng = engine(("src/pkg/m.py", """
            class Row:
                pass

            def make():
                return Row()
        """))
        assert STATEFUL not in eng.summary("pkg.m.make").returns


class TestSanitizersAndPropagation:
    def test_sorted_strips_set_order(self):
        eng = engine(("src/pkg/m.py", """
            def go(items):
                s = {i for i in items}
                ordered = sorted(s)
                return ordered
        """))
        assert SET_ORDER not in eng.summary("pkg.m.go").returns

    def test_list_of_set_keeps_set_order(self):
        eng = engine(("src/pkg/m.py", """
            def go(items):
                return list({i for i in items})
        """))
        assert SET_ORDER in eng.summary("pkg.m.go").returns

    def test_rebinding_clears_taint(self):
        eng = engine(("src/pkg/m.py", """
            def go(items):
                xs = {i for i in items}
                xs = [1, 2, 3]
                return xs
        """))
        assert SET_ORDER not in eng.summary("pkg.m.go").returns

    def test_param_passthrough(self):
        eng = engine(("src/pkg/m.py", """
            import numpy as np

            def identity(x):
                return x

            def go():
                rng = np.random.default_rng()
                return identity(rng)
        """))
        assert 0 in eng.summary("pkg.m.identity").passthrough
        assert RNG in eng.summary("pkg.m.go").returns

    def test_method_call_propagates_receiver_taint(self):
        eng = engine(("src/pkg/m.py", """
            import numpy as np

            def go(seed):
                rng = np.random.default_rng(seed)
                draw = rng.normal(0.0, 1.0)
                return draw
        """))
        assert RNG in eng.summary("pkg.m.go").returns

    def test_module_level_bindings_seed_function_envs(self):
        eng = engine(("src/pkg/m.py", """
            import numpy as np

            _GLOBAL_RNG = np.random.default_rng()

            def go():
                return _GLOBAL_RNG
        """))
        assert RNG in eng.summary("pkg.m.go").returns
