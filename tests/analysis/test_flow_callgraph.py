"""Call-graph builder fixtures: names, edges, pool sites, queries."""

from repro.analysis.flow import build_callgraph, graph_to_json
from repro.analysis.flow.callgraph import module_name

from .conftest import mk


class TestModuleName:
    def test_src_prefix_stripped(self):
        assert module_name("src/repro/evaluate/parallel.py") == \
            "repro.evaluate.parallel"

    def test_package_init(self):
        assert module_name("src/repro/obs/__init__.py") == "repro.obs"

    def test_tests_keep_prefix(self):
        assert module_name("tests/analysis/test_engine.py") == \
            "tests.analysis.test_engine"


class TestCollection:
    def test_functions_methods_nested(self):
        g = build_callgraph([mk("src/pkg/m.py", """
            def top():
                def inner():
                    pass
                return inner

            class C:
                def method(self):
                    pass
        """)])
        assert "pkg.m.top" in g.functions
        assert "pkg.m.top.<locals>.inner" in g.functions
        assert "pkg.m.C.method" in g.functions
        assert g.functions["pkg.m.top"].is_module_level
        assert g.functions["pkg.m.top.<locals>.inner"].nested
        assert g.functions["pkg.m.C.method"].is_method

    def test_guarded_defs_collected(self):
        g = build_callgraph([mk("src/pkg/m.py", """
            try:
                def fast():
                    pass
            except ImportError:
                def fast():
                    pass
        """)])
        assert "pkg.m.fast" in g.functions


class TestEdges:
    def test_intra_module_call(self):
        g = build_callgraph([mk("src/pkg/m.py", """
            def helper():
                pass

            def main():
                helper()
        """)])
        assert "pkg.m.helper" in g.successors("pkg.m.main")

    def test_cross_module_import_call(self):
        g = build_callgraph([
            mk("src/pkg/a.py", """
                def util():
                    pass
            """),
            mk("src/pkg/b.py", """
                from pkg.a import util

                def go():
                    util()
            """),
        ])
        assert "pkg.a.util" in g.successors("pkg.b.go")

    def test_relative_import_call(self):
        g = build_callgraph([
            mk("src/pkg/a.py", """
                def util():
                    pass
            """),
            mk("src/pkg/b.py", """
                from .a import util

                def go():
                    util()
            """),
        ])
        assert "pkg.a.util" in g.successors("pkg.b.go")

    def test_reexport_resolution(self):
        g = build_callgraph([
            mk("src/pkg/impl.py", """
                def work():
                    pass
            """),
            mk("src/pkg/__init__.py", """
                from .impl import work
            """),
            mk("src/other/use.py", """
                import pkg

                def go():
                    pkg.work()
            """),
        ])
        assert "pkg.impl.work" in g.successors("other.use.go")

    def test_self_method_call(self):
        g = build_callgraph([mk("src/pkg/m.py", """
            class C:
                def a(self):
                    self.b()

                def b(self):
                    pass
        """)])
        assert "pkg.m.C.b" in g.successors("pkg.m.C.a")

    def test_constructor_typed_local(self):
        g = build_callgraph([mk("src/pkg/m.py", """
            class C:
                def b(self):
                    pass

            def go():
                c = C()
                c.b()
        """)])
        assert "pkg.m.C.b" in g.successors("pkg.m.go")

    def test_partial_edge(self):
        g = build_callgraph([mk("src/pkg/m.py", """
            from functools import partial

            def worker(x, y):
                pass

            def go():
                f = partial(worker, 1)
                f(2)
        """)])
        kinds = g.edge_kinds.get(("pkg.m.go", "pkg.m.worker"), set())
        assert kinds  # partial wrap and/or call through the bound name

    def test_function_ref_argument(self):
        g = build_callgraph([mk("src/pkg/m.py", """
            def callback():
                pass

            def go(dispatch):
                dispatch(callback)
        """)])
        assert ("pkg.m.go", "pkg.m.callback") in g.edge_kinds

    def test_calls_in_nested_blocks_resolved_once(self):
        g = build_callgraph([mk("src/pkg/m.py", """
            def helper():
                pass

            def go(flag):
                if flag:
                    with open("x") as fh:
                        helper()
        """)])
        edges = [e for e in g.edges
                 if e.caller == "pkg.m.go" and e.callee == "pkg.m.helper"]
        assert len(edges) == 1


class TestQueries:
    def test_closure_and_reaches(self):
        g = build_callgraph([mk("src/pkg/m.py", """
            def leaf():
                pass

            def mid():
                leaf()

            def root():
                mid()

            def unrelated():
                pass
        """)])
        closure = g.closure(["pkg.m.root"])
        assert {"pkg.m.root", "pkg.m.mid", "pkg.m.leaf"} <= closure
        assert "pkg.m.unrelated" not in closure
        reach = g.reaches(["pkg.m.leaf"])
        assert {"pkg.m.root", "pkg.m.mid"} <= reach
        assert "pkg.m.unrelated" not in reach


class TestPoolSites:
    def test_executor_map_and_init(self):
        g = build_callgraph([mk("src/pkg/m.py", """
            from concurrent.futures import ProcessPoolExecutor

            def _init(state):
                pass

            def _work(item):
                return item

            def go(items):
                with ProcessPoolExecutor(
                    max_workers=2, initializer=_init, initargs=(1,)
                ) as pool:
                    return list(pool.map(_work, items, chunksize=4))
        """)])
        kinds = sorted(s.kind for s in g.pool_sites)
        assert kinds == ["init", "map"]
        by_kind = {s.kind: s for s in g.pool_sites}
        assert by_kind["init"].callee == "pkg.m._init"
        assert by_kind["map"].callee == "pkg.m._work"
        # chunksize kwarg is not a shipped argument.
        assert len(by_kind["map"].args) == 1

    def test_taskgraph_submit_is_not_a_pool(self):
        g = build_callgraph([mk("src/pkg/m.py", """
            class TaskGraph:
                def submit(self, fn):
                    pass

            def go():
                graph = TaskGraph()
                graph.submit(go)
        """)])
        assert g.pool_sites == []


class TestGraphJson:
    def test_deterministic_and_structured(self):
        mods = [mk("src/pkg/m.py", """
            def a():
                pass

            def b():
                a()
        """)]
        one = graph_to_json(build_callgraph(mods))
        two = graph_to_json(build_callgraph([mk("src/pkg/m.py",
                                                mods[0].source)]))
        assert one == two
        assert one["version"] == 1
        assert "pkg.m.a" in one["functions"]
        assert any(e["caller"] == "pkg.m.b" and e["callee"] == "pkg.m.a"
                   for e in one["edges"])
