"""Tests for Finding/Severity/Report primitives."""

import pytest

from repro.analysis import Finding, Report, Severity


class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_parse(self):
        assert Severity.parse("error") is Severity.ERROR
        assert Severity.parse(" Warning ") is Severity.WARNING
        with pytest.raises(ValueError):
            Severity.parse("fatal")

    def test_str(self):
        assert str(Severity.ERROR) == "error"


class TestFinding:
    def test_render(self):
        f = Finding(rule="X001", path="src/a.py", line=3, col=4,
                    message="boom", severity=Severity.WARNING,
                    context="x = 1")
        assert f.render() == "src/a.py:3:5: warning: X001: boom"

    def test_fingerprint_is_content_based(self):
        a = Finding(rule="X001", path="src/a.py", line=3,
                    message="boom", context="x == 0.5")
        b = Finding(rule="X001", path="src/a.py", line=99,
                    message="boom", context="x == 0.5")
        assert a.fingerprint == b.fingerprint

    def test_to_dict_round_trip_keys(self):
        d = Finding(rule="X001", path="p.py", line=1, message="m").to_dict()
        assert d["rule"] == "X001" and d["severity"] == "error"


class TestReport:
    def _finding(self, severity):
        return Finding(rule="X", path="p", line=1, message="m",
                       severity=severity)

    def test_exit_code_non_strict_ignores_warnings(self):
        report = Report(findings=[self._finding(Severity.WARNING)])
        assert report.exit_code(strict=False) == 0
        assert report.exit_code(strict=True) == 1

    def test_exit_code_error_always_fails(self):
        report = Report(findings=[self._finding(Severity.ERROR)])
        assert report.exit_code(strict=False) == 1

    def test_exit_code_stale_baseline_fails_both_modes(self):
        report = Report(stale_baseline=[object()])
        assert report.exit_code(strict=False) == 1
        assert report.exit_code(strict=True) == 1

    def test_clean(self):
        assert Report().exit_code(strict=True) == 0
