"""Tests for the baseline store: matching, staleness, persistence."""

import json

import pytest

from repro.analysis import Analyzer, Baseline, Finding, all_rules
from repro.analysis.baseline import BaselineEntry

from .conftest import mk


def _finding(context="x == 0.5", rule="FLT001", path="src/m.py"):
    return Finding(rule=rule, path=path, line=7, message="m", context=context)


class TestMatching:
    def test_matches_by_content_not_line(self):
        baseline = Baseline(entries=[BaselineEntry(
            rule="FLT001", path="src/m.py", context="x == 0.5", reason="r")])
        assert baseline.matches(_finding())
        assert not baseline.matches(_finding(context="y == 0.5"))
        assert not baseline.matches(_finding(rule="DET001"))
        assert not baseline.matches(_finding(path="src/other.py"))

    def test_stale_entries(self):
        used = BaselineEntry(rule="FLT001", path="src/m.py",
                             context="x == 0.5", reason="r")
        unused = BaselineEntry(rule="FLT001", path="src/m.py",
                               context="gone == 1.0", reason="r")
        baseline = Baseline(entries=[used, unused])
        baseline.matches(_finding())
        assert baseline.stale_entries() == [unused]

    def test_partial_run_does_not_condemn_unscanned_entries(self):
        # An entry for a file outside the analyzed paths is not stale:
        # `repro lint src` must not invalidate benchmarks/ entries.
        entry = BaselineEntry(rule="FLT001", path="benchmarks/b.py",
                              context="x == 0.5", reason="r")
        baseline = Baseline(entries=[entry])
        assert baseline.stale_entries(analyzed_paths=["src/m.py"]) == []
        assert baseline.stale_entries(
            analyzed_paths=["benchmarks/b.py"]
        ) == [entry]


class TestPersistence:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "analysis-baseline.json"
        Baseline.from_findings([_finding()], reason="why not").write(path)
        loaded = Baseline.load(path)
        assert len(loaded.entries) == 1
        assert loaded.entries[0].reason == "why not"
        assert loaded.matches(_finding())

    def test_missing_file_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "nope.json")
        assert baseline.entries == []

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_write_is_deterministic(self, tmp_path):
        findings = [_finding(context="b == 2.0"), _finding(context="a == 1.0")]
        p1, p2 = tmp_path / "1.json", tmp_path / "2.json"
        Baseline.from_findings(findings).write(p1)
        Baseline.from_findings(list(reversed(findings))).write(p2)
        assert p1.read_text() == p2.read_text()

    def test_from_findings_deduplicates(self):
        baseline = Baseline.from_findings([_finding(), _finding()])
        assert len(baseline.entries) == 1


class TestEndToEnd:
    def test_baselined_findings_do_not_fail(self):
        module = mk("src/m.py", "bad = x == 0.5\n")
        finding = Analyzer(
            rules=all_rules(only=["FLT001"]), baseline=Baseline()
        ).run([module]).findings[0]
        baseline = Baseline.from_findings([finding])
        report = Analyzer(
            rules=all_rules(only=["FLT001"]), baseline=baseline
        ).run([module])
        assert report.findings == []
        assert len(report.baselined) == 1
        assert report.exit_code(strict=True) == 0

    def test_stale_entry_fails_strict_and_default(self):
        # A suppression that no longer matches anything is rot: it
        # fails the run in both modes (prune with --prune-baseline).
        baseline = Baseline(entries=[BaselineEntry(
            rule="FLT001", path="src/m.py", context="gone", reason="r")])
        report = Analyzer(
            rules=all_rules(only=["FLT001"]), baseline=baseline
        ).run([mk("src/m.py", "x = 1\n")])
        assert report.stale_baseline == baseline.entries
        assert report.exit_code(strict=True) == 1
        assert report.exit_code(strict=False) == 1
