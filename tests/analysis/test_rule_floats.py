"""FLT001 fixtures: the float-equality detector."""

from repro.analysis import all_rules

from .conftest import mk, run_rules

RULES = all_rules(only=["FLT001"])


def findings(src, rel="src/m.py"):
    return run_rules(RULES, mk(rel, src))


class TestPositive:
    def test_eq_float_literal(self):
        out = findings("if smoothness == 0.5:\n    pass\n")
        assert [f.rule for f in out] == ["FLT001"]
        assert "0.5" in out[0].message

    def test_neq_float_literal(self):
        assert findings("ok = x != 1.0\n")

    def test_literal_on_left(self):
        assert findings("ok = 0.0 == err\n")

    def test_negative_literal(self):
        assert findings("ok = x == -2.5\n")

    def test_chained_comparison(self):
        assert findings("ok = a < b == 0.5\n")

    def test_benchmarks_in_scope(self):
        assert findings("assert err == 0.0\n", rel="benchmarks/bench_x.py")


class TestNegative:
    def test_int_literal_ok(self):
        assert not findings("ok = n == 5\n")

    def test_inequality_ok(self):
        assert not findings("ok = x <= 0.5\n")

    def test_float_vs_float_vars_not_flagged(self):
        # Without type inference, variable-vs-variable is out of scope.
        assert not findings("ok = a == b\n")

    def test_isclose_rewrite_ok(self):
        assert not findings(
            "import math\nok = math.isclose(x, 0.5, abs_tol=1e-12)\n"
        )

    def test_tests_dir_out_of_scope(self):
        assert not findings("assert x == 0.5\n", rel="tests/test_m.py")
