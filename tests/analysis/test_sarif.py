"""SARIF 2.1.0 emitter: structural validation against the spec shape
GitHub code scanning requires (schema/version/runs/tool/results)."""

import json

from repro.analysis import all_rules
from repro.analysis.engine import Analyzer
from repro.analysis.findings import Finding, Report, Severity
from repro.analysis.sarif import SARIF_SCHEMA, SARIF_VERSION, to_sarif

from .conftest import mk


def analyze(*modules):
    rules = all_rules()
    analyzer = Analyzer(rules=rules)
    report = analyzer.run([mk(rel, src) for rel, src in modules])
    return report, rules


class TestDocumentShape:
    def test_envelope(self):
        report, rules = analyze(("src/m.py", "def f(xs=[]):\n    return xs"))
        doc = to_sarif(report, rules)
        assert doc["$schema"] == SARIF_SCHEMA
        assert doc["version"] == SARIF_VERSION == "2.1.0"
        assert len(doc["runs"]) == 1
        run = doc["runs"][0]
        assert run["tool"]["driver"]["name"] == "repro-lint"
        assert run["columnKind"] == "utf16CodeUnits"

    def test_document_is_json_serializable(self):
        report, rules = analyze(("src/m.py", "def f(xs=[]):\n    return xs"))
        json.dumps(to_sarif(report, rules))

    def test_rule_descriptors(self):
        report, rules = analyze(("src/m.py", "x = 1\n"))
        descriptors = to_sarif(report, rules)["runs"][0]["tool"]["driver"]["rules"]
        ids = [d["id"] for d in descriptors]
        assert len(ids) == len(set(ids))
        assert "MUT001" in ids and "DET001" in ids
        for d in descriptors:
            assert d["shortDescription"]["text"]
            assert d["defaultConfiguration"]["level"] in (
                "error", "warning", "note")


class TestResults:
    def test_result_row(self):
        report, rules = analyze(("src/m.py", "def f(xs=[]):\n    return xs"))
        doc = to_sarif(report, rules)
        run = doc["runs"][0]
        [result] = [r for r in run["results"] if r["ruleId"] == "MUT001"]
        assert result["level"] == "error"
        assert result["message"]["text"]
        loc = result["locations"][0]["physicalLocation"]
        assert loc["artifactLocation"]["uri"] == "src/m.py"
        assert loc["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
        assert loc["region"]["startLine"] >= 1
        assert loc["region"]["startColumn"] >= 1
        fp = result["partialFingerprints"]["reproLintFingerprint/v1"]
        assert fp == report.findings[0].fingerprint
        rules_list = run["tool"]["driver"]["rules"]
        assert rules_list[result["ruleIndex"]]["id"] == "MUT001"

    def test_severity_level_mapping(self):
        finding = Finding(rule="X001", path="src/m.py", line=1, col=0,
                          message="m", severity=Severity.WARNING,
                          context="c")
        report = Report(findings=[finding], files_analyzed=1, rules_run=0)
        doc = to_sarif(report, [])
        assert doc["runs"][0]["results"][0]["level"] == "warning"

    def test_unregistered_rule_gets_synthesized_descriptor(self):
        # PARSE000 (and any family id) has no registered Rule class.
        finding = Finding(rule="PARSE000", path="src/m.py", line=1, col=0,
                          message="syntax error", severity=Severity.ERROR,
                          context="c")
        report = Report(findings=[finding], files_analyzed=1, rules_run=0)
        doc = to_sarif(report, all_rules())
        run = doc["runs"][0]
        descriptor_ids = [d["id"] for d in run["tool"]["driver"]["rules"]]
        assert "PARSE000" in descriptor_ids
        [result] = run["results"]
        assert descriptor_ids[result["ruleIndex"]] == "PARSE000"

    def test_baselined_findings_are_not_results(self):
        suppressed = Finding(rule="MUT001", path="src/m.py", line=1,
                             message="m", context="c")
        report = Report(findings=[], baselined=[suppressed],
                        files_analyzed=1, rules_run=1)
        assert to_sarif(report, all_rules())["runs"][0]["results"] == []
