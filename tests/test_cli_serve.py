"""Characterization of the `repro serve` CLI."""

import json

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def small(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TILES_101", "10")
    monkeypatch.setenv("REPRO_TILES_128", "10")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "banks"))
    monkeypatch.chdir(tmp_path)


class TestServeBench:
    ARGS = ["serve", "bench", "--tenants", "12", "--shards", "2",
            "--fuzz", "0", "--quiet"]

    def test_smoke_writes_the_artifact(self, capsys, tmp_path):
        out = tmp_path / "BENCH_serve.json"
        assert main(self.ARGS + ["--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "serve bench: 12 tenant(s)" in printed
        assert "OK" in printed
        blob = json.loads(out.read_text())
        assert blob["label"] == "serve-bench"
        assert blob["metrics"]["serve.tenants"] == 12.0
        assert blob["ok"] is True

    def test_empty_out_disables_the_artifact(self, capsys, tmp_path):
        assert main(self.ARGS + ["--out", ""]) == 0
        assert not (tmp_path / "BENCH_serve.json").exists()

    def test_bad_tenants_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "bench", "--tenants", "0"])
        assert exc.value.code == 2
        assert "--tenants" in capsys.readouterr().err

    def test_bad_shards_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "bench", "--shards", "0"])
        assert exc.value.code == 2
        assert "--shards" in capsys.readouterr().err

    def test_bad_bound_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "bench", "--p99-bound", "0"])
        assert exc.value.code == 2
        assert "--p99-bound" in capsys.readouterr().err


class TestServeRun:
    def test_bad_shards_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "run", "--shards", "0"])
        assert exc.value.code == 2
        assert "--shards" in capsys.readouterr().err

    def test_bad_interval_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["serve", "run", "--tick-interval", "0"])
        assert exc.value.code == 2
        assert "--tick-interval" in capsys.readouterr().err
