"""Characterization of the `repro faults` CLI."""

import json

import pytest

from repro.cli import main


@pytest.fixture(autouse=True)
def small(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TILES_101", "10")
    monkeypatch.setenv("REPRO_TILES_128", "10")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "banks"))
    monkeypatch.chdir(tmp_path)


class TestFaultsList:
    def test_lists_every_canned_schedule(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("straggler", "crash", "interference", "netdeg",
                     "compound"):
            assert name in out

    def test_kinds_column(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        assert "slowdown" in out and "network" in out


class TestFaultsDescribe:
    def test_describe_mentions_the_faults(self, capsys):
        assert main(["faults", "describe", "crash"]) == 0
        out = capsys.readouterr().out
        assert "crash" in out
        assert "fingerprint" in out

    def test_describe_json_is_parseable(self, capsys):
        assert main(["faults", "describe", "crash", "--json"]) == 0
        out = capsys.readouterr().out
        blob = json.loads(out.strip().splitlines()[-1])
        assert blob["label"] == "crash"
        assert blob["faults"]

    def test_unknown_schedule_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["faults", "describe", "meteor"])
        assert exc.value.code == 2
        assert "unknown schedule" in capsys.readouterr().err


class TestFaultsRun:
    RUN_ARGS = [
        "faults", "run", "b", "--schedules", "crash", "--strategies",
        "UCB", "Resilient(UCB)", "--reps", "2", "--iterations", "20",
    ]

    def test_smoke_run_writes_the_artifact(self, capsys, tmp_path):
        out = tmp_path / "BENCH_faults.json"
        assert main(self.RUN_ARGS + ["--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "fault campaign" in printed
        assert "Resilient(UCB)" in printed
        payload = json.loads(out.read_text())
        assert "regret.crash.UCB" in payload["metrics"]
        assert "regret.crash.Resilient(UCB)" in payload["metrics"]
        assert payload["config"]["reps"] == 2

    def test_empty_out_skips_the_artifact(self, capsys, tmp_path):
        assert main(self.RUN_ARGS + ["--out", ""]) == 0
        assert not (tmp_path / "BENCH_faults.json").exists()

    def test_unknown_schedule_exits_2(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["faults", "run", "b", "--schedules", "meteor"])
        assert exc.value.code == 2
        assert "unknown schedule" in capsys.readouterr().err

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            main(self.RUN_ARGS[:-2] + ["--strategies", "Nope"])
