"""Tests for the solve / determinant / dot phases."""

import numpy as np
import pytest

from repro.linalg import (
    TileGrid,
    TileStore,
    numeric_cholesky,
    numeric_dot,
    numeric_log_det,
    numeric_solve,
    register_vector,
    submit_cholesky,
    submit_determinant,
    submit_dot,
    submit_solve,
)
from repro.runtime import DataRegistry, TaskGraph


def random_spd(n, seed=3):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


class TestNumericPhases:
    def setup_method(self):
        self.nb, self.t = 4, 4
        n = self.nb * self.t
        self.a = random_spd(n)
        self.y = np.random.default_rng(5).standard_normal(n)
        self.factor = numeric_cholesky(TileStore.from_matrix(self.a, self.nb))

    def test_solve_matches_direct(self):
        z = numeric_solve(self.factor, self.y)
        l = np.linalg.cholesky(self.a)
        assert np.allclose(z, np.linalg.solve(l, self.y))

    def test_solve_shape_check(self):
        with pytest.raises(ValueError):
            numeric_solve(self.factor, np.zeros(3))

    def test_log_det_matches_slogdet(self):
        assert numeric_log_det(self.factor) == pytest.approx(
            np.linalg.slogdet(self.a)[1]
        )

    def test_dot(self):
        z = np.array([1.0, 2.0, 3.0])
        assert numeric_dot(z) == pytest.approx(14.0)

    def test_solve_plus_dot_is_quadratic_form(self):
        """z.z where Lz=y equals y^T Sigma^{-1} y -- the likelihood term."""
        z = numeric_solve(self.factor, self.y)
        expected = self.y @ np.linalg.solve(self.a, self.y)
        assert numeric_dot(z) == pytest.approx(expected)


class TestSolveTaskGraph:
    def build(self, t=4, nb=3):
        graph = TaskGraph(DataRegistry())
        tiles = TileGrid(t, nb)
        tiles.register(graph.registry, lambda i, j: 0)
        submit_cholesky(graph, tiles)
        rhs = register_vector(graph.registry, tiles, "y", lambda k: 0)
        scratch = graph.registry.register("acc", 8.0, home=0)
        solve = submit_solve(graph, tiles, rhs)
        det = submit_determinant(graph, tiles, scratch)
        dot = submit_dot(graph, rhs, nb, scratch)
        return graph, tiles, solve, det, dot

    def test_task_counts(self):
        t = 4
        graph, _, solve, det, dot = self.build(t=t)
        assert len(solve) == t + t * (t - 1) // 2
        assert len(det) == t
        assert len(dot) == t

    def test_acyclic(self):
        graph, *_ = self.build()
        graph.validate_acyclic()

    def test_solve_depends_on_factorization(self):
        graph, tiles, solve, _, _ = self.build(t=3)
        preds = graph.predecessors()
        first_trsv = solve[0]
        # The k=0 solve reads L[0,0], written last by potrf(0).
        pred_names = {graph.tasks[p].name for p in preds[first_trsv.tid]}
        assert "potrf" in pred_names

    def test_dot_depends_on_solve(self):
        graph, _, solve, _, dot = self.build(t=3)
        preds = graph.predecessors()
        solve_tids = {t.tid for t in solve}
        assert any(p in solve_tids for p in preds[dot[0].tid])

    def test_det_tasks_chain_through_scratch(self):
        graph, _, _, det, _ = self.build(t=3)
        preds = graph.predecessors()
        assert det[0].tid in preds[det[1].tid]

    def test_phases_labelled(self):
        graph, *_ = self.build()
        phases = {t.phase for t in graph.tasks}
        assert phases == {"factorization", "solve", "determinant", "dot"}
