"""Unit tests for tile kernels (flop counts and numerics)."""

import numpy as np
import pytest

from repro.linalg import kernels


def random_spd(n, rng):
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


class TestFlopCounts:
    def test_cholesky_total_matches_per_kernel_sum(self):
        t, nb = 7, 4
        counts = kernels.cholesky_task_counts(t)
        total = (
            counts["potrf"] * kernels.potrf_flops(nb)
            + counts["trsm"] * kernels.trsm_flops(nb)
            + counts["syrk"] * kernels.syrk_flops(nb)
            + counts["gemm"] * kernels.gemm_flops(nb)
        )
        assert kernels.cholesky_total_flops(t, nb) == pytest.approx(total)

    def test_total_asymptotics(self):
        """Total flops approach (t*nb)^3 / 3 for large t."""
        t, nb = 64, 8
        n = t * nb
        assert kernels.cholesky_total_flops(t, nb) == pytest.approx(
            n**3 / 3, rel=0.1
        )

    def test_task_counts(self):
        assert kernels.cholesky_task_counts(4) == {
            "potrf": 4, "trsm": 6, "syrk": 6, "gemm": 4,
        }

    def test_gemm_dominates(self):
        assert kernels.gemm_flops(100) > kernels.syrk_flops(100) > kernels.potrf_flops(100)


class TestNumericKernels:
    def setup_method(self):
        self.rng = np.random.default_rng(42)

    def test_potrf(self):
        a = random_spd(8, self.rng)
        l = kernels.potrf(a)
        assert np.allclose(l @ l.T, a)
        assert np.allclose(l, np.tril(l))

    def test_trsm_recovers_panel(self):
        """After trsm, X satisfies X L_kk^T = A_ik."""
        a_kk = random_spd(6, self.rng)
        l_kk = kernels.potrf(a_kk)
        a_ik = self.rng.standard_normal((6, 6))
        x = kernels.trsm(l_kk, a_ik)
        assert np.allclose(x @ l_kk.T, a_ik)

    def test_syrk(self):
        a = random_spd(5, self.rng)
        l = self.rng.standard_normal((5, 5))
        assert np.allclose(kernels.syrk(a, l), a - l @ l.T)

    def test_gemm(self):
        a = self.rng.standard_normal((5, 5))
        l1 = self.rng.standard_normal((5, 5))
        l2 = self.rng.standard_normal((5, 5))
        assert np.allclose(kernels.gemm(a, l1, l2), a - l1 @ l2.T)

    def test_trsv(self):
        l = np.tril(random_spd(6, self.rng))
        b = self.rng.standard_normal(6)
        y = kernels.trsv(l, b)
        assert np.allclose(l @ y, b)

    def test_gemv_update(self):
        b = self.rng.standard_normal(4)
        l = self.rng.standard_normal((4, 4))
        y = self.rng.standard_normal(4)
        assert np.allclose(kernels.gemv_update(b, l, y), b - l @ y)

    def test_log_det_from_tile(self):
        a = random_spd(6, self.rng)
        l = kernels.potrf(a)
        expected = np.linalg.slogdet(a)[1]
        assert kernels.log_det_from_tile(l) == pytest.approx(expected)
