"""Tests for tile Cholesky: numeric correctness and task-graph structure."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg import (
    TileGrid,
    TileStore,
    critical_path_flops,
    kernels,
    numeric_cholesky,
    submit_cholesky,
)
from repro.runtime import DataRegistry, TaskGraph


def random_spd(n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


class TestNumericCholesky:
    @pytest.mark.parametrize("t,nb", [(1, 4), (2, 3), (4, 4), (5, 2)])
    def test_matches_numpy(self, t, nb):
        a = random_spd(t * nb, seed=t * 100 + nb)
        store = TileStore.from_matrix(a, nb)
        factor = numeric_cholesky(store)
        assert np.allclose(factor.to_lower_matrix(), np.linalg.cholesky(a))

    def test_input_not_mutated(self):
        a = random_spd(8, seed=1)
        store = TileStore.from_matrix(a, 4)
        before = {ij: b.copy() for ij, b in store.blocks.items()}
        numeric_cholesky(store)
        for ij, b in store.blocks.items():
            assert np.array_equal(b, before[ij])

    @settings(max_examples=25, deadline=None)
    @given(
        t=st.integers(min_value=1, max_value=5),
        nb=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_property_reconstruction(self, t, nb, seed):
        """L L^T reconstructs the input for random SPD matrices."""
        a = random_spd(t * nb, seed)
        factor = numeric_cholesky(TileStore.from_matrix(a, nb))
        low = factor.to_lower_matrix()
        assert np.allclose(low @ low.T, a, atol=1e-8 * t * nb)


class TestCholeskyTaskGraph:
    def build(self, t=5, nb=4, owner=lambda i, j: 0):
        graph = TaskGraph(DataRegistry())
        tiles = TileGrid(t, nb)
        tiles.register(graph.registry, owner)
        tasks = submit_cholesky(graph, tiles)
        return graph, tiles, tasks

    def test_task_counts_match_formula(self):
        t = 6
        graph, _, _ = self.build(t=t)
        assert graph.counts_by_name() == kernels.cholesky_task_counts(t)

    def test_graph_is_acyclic(self):
        graph, _, _ = self.build()
        graph.validate_acyclic()

    def test_single_root_is_first_potrf(self):
        graph, _, _ = self.build()
        roots = graph.roots()
        assert len(roots) == 1
        assert graph.tasks[roots[0]].name == "potrf"
        assert graph.tasks[roots[0]].tag == (0, 0, 0)

    def test_total_flops(self):
        t, nb = 5, 4
        graph, _, _ = self.build(t=t, nb=nb)
        assert graph.total_flops() == pytest.approx(
            kernels.cholesky_total_flops(t, nb)
        )

    def test_owner_computes_placement(self):
        graph, _, _ = self.build(owner=lambda i, j: (i * 7 + j) % 3)
        for task in graph.tasks:
            _, i, j = task.tag
            assert task.node == (i * 7 + j) % 3

    def test_trsm_depends_on_potrf(self):
        graph, _, _ = self.build(t=3)
        preds = graph.predecessors()
        by_tag = {t.tag: t for t in graph.tasks}
        potrf0 = by_tag[(0, 0, 0)]
        trsm10 = by_tag[(0, 1, 0)]
        assert potrf0.tid in preds[trsm10.tid]

    def test_priorities_decrease_with_k(self):
        graph, _, _ = self.build(t=4)
        by_tag = {t.tag: t for t in graph.tasks}
        assert by_tag[(0, 0, 0)].priority > by_tag[(1, 1, 1)].priority

    def test_phase_label(self):
        graph, _, _ = self.build()
        assert all(t.phase == "factorization" for t in graph.tasks)


class TestCriticalPath:
    def test_positive_and_grows_with_t(self):
        assert critical_path_flops(10, 8) > critical_path_flops(5, 8) > 0

    def test_single_tile(self):
        assert critical_path_flops(1, 8) == pytest.approx(kernels.potrf_flops(8))
