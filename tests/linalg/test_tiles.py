"""Unit tests for the tile grid and numeric tile store."""

import numpy as np
import pytest

from repro.linalg import TileGrid, TileStore
from repro.runtime import DataRegistry


class TestTileGrid:
    def test_lower_tiles_count(self):
        grid = TileGrid(5, 4)
        assert len(list(grid.lower_tiles())) == 15
        assert grid.tile_count == 15

    def test_lower_tiles_are_lower(self):
        assert all(i >= j for i, j in TileGrid(6, 2).lower_tiles())

    def test_sizes(self):
        grid = TileGrid(3, 10)
        assert grid.matrix_order == 30
        assert grid.tile_bytes == 800.0
        assert grid.matrix_bytes == 800.0 * 6

    def test_register_homes_follow_distribution(self):
        grid = TileGrid(4, 2)
        reg = DataRegistry()
        grid.register(reg, lambda i, j: (i + j) % 3)
        assert grid.handle(2, 1).home == 0
        assert grid.handle(3, 1).home == 1

    def test_double_register_rejected(self):
        grid = TileGrid(2, 2)
        reg = DataRegistry()
        grid.register(reg, lambda i, j: 0)
        with pytest.raises(RuntimeError):
            grid.register(reg, lambda i, j: 0)

    def test_redistribute_counts_moves(self):
        grid = TileGrid(3, 2)
        reg = DataRegistry()
        grid.register(reg, lambda i, j: 0)
        moved = grid.redistribute(reg, lambda i, j: i % 2)
        # Tiles with odd i move: (1,0),(1,1),(3? no t=3)-> i in {1}: (1,0),(1,1)
        assert moved == 2
        assert grid.handle(1, 0).home == 1

    def test_redistribute_before_register_rejected(self):
        with pytest.raises(RuntimeError):
            TileGrid(2, 2).redistribute(DataRegistry(), lambda i, j: 0)

    def test_upper_tile_access_rejected(self):
        grid = TileGrid(3, 2)
        grid.register(DataRegistry(), lambda i, j: 0)
        with pytest.raises(KeyError):
            grid.handle(0, 2)

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            TileGrid(0, 4)
        with pytest.raises(ValueError):
            TileGrid(4, 0)


class TestTileStore:
    def setup_method(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((12, 12))
        self.spd = a @ a.T + 12 * np.eye(12)

    def test_roundtrip_symmetric(self):
        store = TileStore.from_matrix(self.spd, 4)
        assert np.allclose(store.to_symmetric_matrix(), self.spd)

    def test_lower_matrix_is_lower(self):
        store = TileStore.from_matrix(self.spd, 4)
        low = store.to_lower_matrix()
        assert np.allclose(low, np.tril(low))

    def test_indivisible_order_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            TileStore.from_matrix(self.spd, 5)

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError, match="square"):
            TileStore.from_matrix(np.zeros((4, 6)), 2)

    def test_setitem_rejects_upper(self):
        store = TileStore(3, 2)
        with pytest.raises(KeyError):
            store[(0, 1)] = np.zeros((2, 2))

    def test_setitem_rejects_wrong_shape(self):
        store = TileStore(3, 2)
        with pytest.raises(ValueError):
            store[(1, 0)] = np.zeros((3, 3))
