"""Tests for the mixed-precision Cholesky extension."""

import numpy as np
import pytest

from repro.linalg import (
    PrecisionPolicy,
    TileStore,
    kernels,
    mixed_factorization_flops,
    numeric_cholesky,
    numeric_cholesky_mixed,
    quantize_fp32,
)


def random_spd(n, seed=0):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    return a @ a.T + n * np.eye(n)


class TestPrecisionPolicy:
    def test_band_membership(self):
        p = PrecisionPolicy(dp_bands=2)
        assert p.is_double(0, 0)
        assert p.is_double(3, 2)       # distance 1 < 2
        assert not p.is_double(4, 1)   # distance 3

    def test_all_double_when_bands_cover_grid(self):
        p = PrecisionPolicy(dp_bands=10)
        assert all(p.is_double(i, j) for j in range(8) for i in range(j, 8))

    def test_tile_bytes_halved_for_sp(self):
        p = PrecisionPolicy(dp_bands=1)
        assert p.tile_bytes(10, 0, 0) == 800.0
        assert p.tile_bytes(10, 5, 0) == 400.0

    def test_flops_scale(self):
        p = PrecisionPolicy(dp_bands=1)
        assert p.flops_scale(0, 0) == 1.0
        assert p.flops_scale(5, 0) == 0.5

    def test_double_fraction_monotone(self):
        fracs = [PrecisionPolicy(b).double_fraction(10) for b in (1, 3, 10)]
        assert fracs[0] < fracs[1] < fracs[2] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            PrecisionPolicy(dp_bands=0)
        with pytest.raises(ValueError):
            PrecisionPolicy(dp_bands=1).is_double(0, 1)


class TestQuantize:
    def test_roundtrip_small_error(self):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((16, 16))
        q = quantize_fp32(a)
        assert q.dtype == np.float64
        assert np.max(np.abs(q - a)) < 1e-6
        assert not np.array_equal(q, a)


class TestMixedCholesky:
    def setup_method(self):
        self.a = random_spd(24, seed=3)
        self.store = TileStore.from_matrix(self.a, 4)

    def test_full_dp_matches_reference(self):
        policy = PrecisionPolicy(dp_bands=6)  # everything double
        mixed = numeric_cholesky_mixed(self.store, policy)
        ref = numeric_cholesky(self.store)
        assert np.allclose(mixed.to_lower_matrix(), ref.to_lower_matrix())

    def test_mixed_factor_close_to_reference(self):
        policy = PrecisionPolicy(dp_bands=2)
        mixed = numeric_cholesky_mixed(self.store, policy)
        ref = numeric_cholesky(self.store)
        low_m, low_r = mixed.to_lower_matrix(), ref.to_lower_matrix()
        assert np.allclose(low_m, low_r, atol=1e-3)
        assert not np.array_equal(low_m, low_r)  # fp32 error is present

    def test_error_decreases_with_more_bands(self):
        ref = numeric_cholesky(self.store).to_lower_matrix()
        errs = []
        for bands in (1, 3, 6):
            mixed = numeric_cholesky_mixed(
                self.store, PrecisionPolicy(dp_bands=bands)
            ).to_lower_matrix()
            errs.append(np.max(np.abs(mixed - ref)))
        assert errs[0] >= errs[1] >= errs[2]
        assert errs[2] == 0.0


class TestMixedFlops:
    def test_all_double_matches_reference_total(self):
        t, nb = 7, 4
        assert mixed_factorization_flops(
            t, nb, PrecisionPolicy(dp_bands=t)
        ) == pytest.approx(kernels.cholesky_total_flops(t, nb))

    def test_fewer_bands_fewer_flops(self):
        t, nb = 10, 4
        costs = [
            mixed_factorization_flops(t, nb, PrecisionPolicy(b))
            for b in (1, 4, 10)
        ]
        assert costs[0] < costs[1] < costs[2]

    def test_floor_is_half(self):
        t, nb = 12, 4
        full = kernels.cholesky_total_flops(t, nb)
        minimal = mixed_factorization_flops(t, nb, PrecisionPolicy(1))
        assert full * 0.5 <= minimal <= full
