"""Integration tests crossing every layer of the stack.

Small tile counts keep these fast; they exercise the exact paths the
benchmark harness uses.
"""

import numpy as np
import pytest

from repro import ExaGeoStat, Workload, get_scenario
from repro.distribution import LPBoundCalculator
from repro.evaluate import (
    evaluate_scenario,
    figure4_snapshots,
    strategy_space_for,
)
from repro.geostat import IterationPlan
from repro.measure import for_mode, sweep_scenario
from repro.strategies import GPDiscontinuousStrategy, make_strategy, strategy_names


@pytest.fixture(autouse=True)
def small_tiles(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TILES_101", "12")
    monkeypatch.setenv("REPRO_TILES_128", "12")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


class TestSweepToStrategyPipeline:
    @pytest.fixture(scope="class")
    def bank(self):
        # Class-scoped: env fixture above is function-scoped, so re-set here.
        import os

        os.environ["REPRO_TILES_101"] = "12"
        return sweep_scenario(get_scenario("b"), augment=10, seed=5)

    def test_lp_is_lower_bound_everywhere(self, bank):
        for n in bank.actions:
            assert bank.lp[n] <= bank.true_means[n] + 1e-9

    def test_every_strategy_runs_127_iterations(self, bank):
        rng = np.random.default_rng(0)
        space = bank.action_space()
        for name in strategy_names():
            strategy = make_strategy(name, space, seed=0)
            for _ in range(127):
                n = strategy.propose()
                strategy.observe(n, bank.resample(n, rng))
            assert strategy.iteration == 127

    def test_evaluation_orders_baselines(self, bank):
        ev = evaluate_scenario(
            bank, strategies=("UCB-struct", "GP-discontinuous"),
            iterations=60, reps=4,
        )
        assert ev.oracle_mean <= ev.all_nodes_mean
        for s in ev.summaries:
            # No strategy can beat the oracle or be absurdly bad.
            assert s.mean_total >= ev.oracle_mean * 0.98
            assert s.mean_total <= ev.all_nodes_mean * 1.6

    def test_figure4_replay_consistent_with_bank(self, bank):
        snaps = figure4_snapshots(bank, "GP-discontinuous", iterations=(20,))
        assert sum(snaps[0].counts.values()) == 19


class TestOnlineApplication:
    def test_gp_disc_online_converges_near_best(self):
        scenario = get_scenario("b")
        cluster = scenario.build_cluster()
        workload = Workload.from_name("101")
        noise = for_mode("Simul")
        app = ExaGeoStat(
            cluster, workload, noise=lambda d, rng: noise.sample(d, rng), seed=2
        )
        strategy = GPDiscontinuousStrategy(strategy_space_for(scenario, workload), seed=2)
        result = app.run(strategy, 50)

        # Determine the true best from the deterministic cache.
        app2 = ExaGeoStat(cluster, workload)
        durations = {
            n: app2.measure(n)
            for n in strategy.space.actions
        }
        best = min(durations, key=durations.get)
        late_choices = result.chosen_counts[-10:]
        late_mean = np.mean([durations[n] for n in late_choices])
        assert late_mean <= durations[best] * 1.25
        assert late_mean <= durations[len(cluster)] * 1.05

    def test_phase_structure_consistent_across_plans(self):
        scenario = get_scenario("c")
        cluster = scenario.build_cluster()
        workload = Workload.from_name("128")
        app = ExaGeoStat(cluster, workload)
        for n in (5, len(cluster)):
            sim = app.simulate(IterationPlan(n_fact=n, n_gen=len(cluster)))
            assert set(sim.phase_spans) == {
                "generation", "factorization", "solve", "determinant", "dot"
            }
            # Solve/det/dot are cheap relative to the two main phases.
            main = sim.phase_duration("factorization")
            assert sim.phase_spans["dot"][1] <= sim.makespan + 1e-9
            assert main > 0

    def test_lp_tracks_aggregate_speed(self):
        """Doubling every node's speed halves the LP bound."""
        import dataclasses

        scenario = get_scenario("m")
        workload = Workload.from_name("128")
        cluster = scenario.build_cluster()
        lp1 = LPBoundCalculator(cluster, workload).fact(10)

        from repro.platform import Cluster

        nt = cluster[0].node_type
        fast_nt = dataclasses.replace(
            nt, cpu_gflops=nt.cpu_gflops * 2, gpu_gflops=nt.gpu_gflops * 2
        )
        fast = Cluster([(fast_nt, 64)], network=cluster.network)
        lp2 = LPBoundCalculator(fast, workload).fact(10)
        assert lp2 == pytest.approx(lp1 / 2, rel=1e-6)
