"""Characterization of all 16 scenarios at reduced scale.

Cheap structural checks over every scenario of Figures 5/6: the sweep
machinery, LP bounds, noise augmentation and action spaces must be
coherent for each of them (the full-scale shapes are exercised by the
benchmark harness).
"""

import numpy as np
import pytest

from repro.measure import for_mode, scenario_actions, sweep_scenario
from repro.platform import SCENARIOS, get_scenario
from repro.workload import Workload


@pytest.fixture(autouse=True)
def tiny(monkeypatch):
    monkeypatch.setenv("REPRO_TILES_101", "8")
    monkeypatch.setenv("REPRO_TILES_128", "8")


@pytest.mark.parametrize("key", sorted(SCENARIOS))
class TestEveryScenario:
    def test_action_space_structure(self, key):
        scenario = get_scenario(key)
        actions = scenario_actions(scenario)
        assert actions[-1] == scenario.total_nodes
        assert 2 <= actions[0] <= actions[-1]
        assert list(actions) == list(range(actions[0], actions[-1] + 1))

    def test_probe_sweep_consistent(self, key):
        scenario = get_scenario(key)
        actions = scenario_actions(scenario)
        probes = sorted({actions[0], actions[len(actions) // 2], actions[-1]})
        bank = sweep_scenario(scenario, actions=probes, augment=5, seed=3)
        for n in probes:
            assert bank.true_means[n] > 0
            assert bank.lp[n] <= bank.true_means[n] + 1e-9
            assert len(bank.samples[n]) == 5
        # Noise magnitude roughly matches the configured model.
        noise = for_mode(scenario.mode)
        pooled = np.concatenate(
            [bank.samples[n] - bank.true_means[n] for n in probes]
        )
        assert np.std(pooled) < 4 * (noise.sd + 1.0)

    def test_group_boundaries_match_composition(self, key):
        scenario = get_scenario(key)
        cluster = scenario.build_cluster()
        assert cluster.group_boundaries[-1] == scenario.total_nodes
        assert len(cluster.group_boundaries) == len(scenario.counts)
