"""Characterization goldens for the Figure 6 `compare` pipeline.

Pins the exact per-repetition totals and chosen-arm sequences of three
strategy families (heuristic DC, bandit UCB, GP-discontinuous) on two
scenarios at reduced scale.  Any change to the simulator, the noise
model, the seed derivation or the strategies that shifts a single
resampled duration or decision fails here with a precise diff.

Regenerate deliberately after an intended behaviour change::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/integration/test_compare_golden.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.evaluate import plan_cells, run_cells
from repro.measure import cached_bank
from repro.platform import get_scenario

GOLDEN = Path(__file__).parent / "goldens" / "compare_golden.json"
SCENARIO_KEYS = ("b", "c")
STRATEGIES = ("DC", "UCB", "GP-discontinuous")
ITERATIONS = 20
REPS = 2


@pytest.fixture(autouse=True)
def tiny(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TILES_101", "8")
    monkeypatch.setenv("REPRO_TILES_128", "8")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


def compute_characterization():
    banks = {k: cached_bank(get_scenario(k)) for k in SCENARIO_KEYS}
    cells = plan_cells(banks, STRATEGIES, REPS, include_baselines=False)
    results = run_cells(banks, cells, ITERATIONS)
    return {
        f"{r.cell.scenario}/{r.cell.strategy}/{r.cell.rep}": {
            "total": r.total,
            "chosen": [int(n) for n in r.chosen],
        }
        for r in results
    }


class TestCompareGolden:
    def test_exact_match(self):
        actual = compute_characterization()
        if os.environ.get("REPRO_REGEN_GOLDENS"):
            GOLDEN.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN.write_text(
                json.dumps(actual, indent=2, sort_keys=True) + "\n"
            )
            pytest.skip(f"regenerated {GOLDEN}")
        assert GOLDEN.exists(), (
            f"golden missing; run with REPRO_REGEN_GOLDENS=1 to create "
            f"{GOLDEN}"
        )
        expected = json.loads(GOLDEN.read_text())
        assert sorted(actual) == sorted(expected)
        for key in sorted(expected):
            assert actual[key]["chosen"] == expected[key]["chosen"], key
            # Exact float match: JSON round-trips IEEE doubles losslessly.
            assert actual[key]["total"] == expected[key]["total"], key

    def test_golden_covers_full_grid(self):
        expected = json.loads(GOLDEN.read_text())
        assert len(expected) == len(SCENARIO_KEYS) * len(STRATEGIES) * REPS
        for record in expected.values():
            assert len(record["chosen"]) == ITERATIONS
            assert record["total"] > 0
