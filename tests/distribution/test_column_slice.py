"""Tests for the Beaumont-style column-slice heterogeneous distribution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution import (
    column_slice_distribution,
    column_slice_pattern,
    tile_counts,
)


class TestPatternStructure:
    def test_square_pattern(self):
        pattern = column_slice_pattern([1.0] * 9)
        assert len(pattern) == len(pattern[0])

    def test_all_cells_valid_nodes(self):
        pattern = column_slice_pattern([3.0, 2.0, 1.0, 1.0])
        flat = {c for row in pattern for c in row}
        assert flat <= {0, 1, 2, 3}

    def test_columns_are_slice_coherent(self):
        """Every pattern column belongs to one slice: the nodes appearing
        in a column never appear in a different column group."""
        weights = [4.0, 4.0, 1.0, 1.0]
        pattern = column_slice_pattern(weights)
        p = len(pattern)
        col_nodes = [frozenset(pattern[r][c] for r in range(p)) for c in range(p)]
        groups = {}
        for c, nodes in enumerate(col_nodes):
            groups.setdefault(nodes, []).append(c)
        for cols in groups.values():
            assert cols == list(range(cols[0], cols[-1] + 1))

    def test_row_consumers_scale_like_sqrt_n(self):
        """Distinct nodes per pattern row ~ number of slices ~ sqrt(n)."""
        n = 36
        pattern = column_slice_pattern([1.0] * n)
        per_row = [len(set(row)) for row in pattern]
        assert max(per_row) <= 2 * int(np.ceil(np.sqrt(n))) + 1

    def test_validation(self):
        with pytest.raises(ValueError):
            column_slice_pattern([])
        with pytest.raises(ValueError):
            column_slice_pattern([1.0, -2.0])


class TestDistributionBalance:
    def test_tile_share_proportional_to_weight(self):
        weights = [8.0, 4.0, 2.0, 2.0]
        dist = column_slice_distribution(weights)
        counts = tile_counts(dist, t=48)
        total = sum(counts.values())
        for node, w in enumerate(weights):
            share = counts.get(node, 0) / total
            assert share == pytest.approx(w / sum(weights), abs=0.08)

    def test_tiny_weight_rounds_to_zero_not_inflated(self):
        """A node whose fair share is far below one pattern cell owns no
        tiles rather than an inflated share (avoids artificial cliffs)."""
        weights = [100.0] * 8 + [0.1]
        dist = column_slice_distribution(weights)
        counts = tile_counts(dist, t=40)
        total = sum(counts.values())
        share = counts.get(8, 0) / total
        assert share <= 0.01

    def test_moderate_small_weight_gets_some_tiles(self):
        """The paper's slow nodes (a few % of the weight) do receive tiles
        -- that is what creates the critical-path discontinuities."""
        weights = [10.0] * 6 + [1.0] * 2
        dist = column_slice_distribution(weights)
        counts = tile_counts(dist, t=40)
        assert counts.get(6, 0) + counts.get(7, 0) > 0

    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=40),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_valid_owners(self, n, seed):
        rng = np.random.default_rng(seed)
        weights = rng.uniform(0.5, 10.0, size=n).tolist()
        dist = column_slice_distribution(weights)
        for j in range(0, 12, 3):
            for i in range(j, 12, 4):
                assert 0 <= dist(i, j) < n

    def test_deterministic(self):
        d1 = column_slice_distribution([2.0, 1.0, 1.0])
        d2 = column_slice_distribution([2.0, 1.0, 1.0])
        assert all(d1(i, j) == d2(i, j) for j in range(9) for i in range(j, 9))

    def test_changing_weights_reshapes(self):
        d1 = column_slice_distribution([1.0] * 6)
        d2 = column_slice_distribution([1.0] * 7)
        diff = sum(d1(i, j) != d2(i, j) for j in range(12) for i in range(j, 12))
        assert diff > 0
