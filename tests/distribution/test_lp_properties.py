"""Property-based tests for the LP allocation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution import lp_task_allocation


@st.composite
def lp_instances(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    k = draw(st.integers(min_value=1, max_value=4))
    durations = np.array([
        [draw(st.floats(min_value=0.01, max_value=10.0)) for _ in range(k)]
        for _ in range(n)
    ])
    counts = [draw(st.integers(min_value=0, max_value=50)) for _ in range(k)]
    return durations, counts


class TestLPProperties:
    @settings(max_examples=60, deadline=None)
    @given(inst=lp_instances())
    def test_feasibility(self, inst):
        durations, counts = inst
        res = lp_task_allocation(durations, counts)
        # All tasks placed.
        assert np.allclose(res.allocation.sum(axis=0), counts, atol=1e-6)
        # No node busier than the makespan.
        busy = (res.allocation * durations).sum(axis=1)
        assert np.all(busy <= res.makespan + 1e-6)
        assert np.all(res.allocation >= -1e-9)

    @settings(max_examples=40, deadline=None)
    @given(inst=lp_instances())
    def test_work_lower_bound(self, inst):
        """Makespan at least total work over total rate (per kernel)."""
        durations, counts = inst
        res = lp_task_allocation(durations, counts)
        for j, c in enumerate(counts):
            rate = (1.0 / durations[:, j]).sum()
            assert res.makespan >= c / rate - 1e-6

    @settings(max_examples=40, deadline=None)
    @given(inst=lp_instances(), extra=st.floats(min_value=0.01, max_value=10.0))
    def test_adding_a_node_never_hurts(self, inst, extra):
        durations, counts = inst
        base = lp_task_allocation(durations, counts).makespan
        k = durations.shape[1]
        bigger = np.vstack([durations, np.full((1, k), extra)])
        improved = lp_task_allocation(bigger, counts).makespan
        assert improved <= base + 1e-6

    @settings(max_examples=40, deadline=None)
    @given(inst=lp_instances(), scale=st.floats(min_value=0.1, max_value=10.0))
    def test_scaling_durations_scales_makespan(self, inst, scale):
        durations, counts = inst
        base = lp_task_allocation(durations, counts).makespan
        scaled = lp_task_allocation(durations * scale, counts).makespan
        assert scaled == pytest.approx(base * scale, rel=1e-4, abs=1e-8)
