"""Tests for the LP lower bound (allocation + closed-form oracles)."""

import numpy as np
import pytest

from repro.distribution import LPBoundCalculator, lp_task_allocation
from repro.platform import get_scenario
from repro.runtime import PerfModel
from repro.workload import Workload


class TestLPTaskAllocation:
    def test_single_node_single_kernel(self):
        res = lp_task_allocation(np.array([[2.0]]), [5])
        assert res.makespan == pytest.approx(10.0)
        assert res.allocation[0, 0] == pytest.approx(5.0)

    def test_two_equal_nodes_split_evenly(self):
        res = lp_task_allocation(np.array([[1.0], [1.0]]), [10])
        assert res.makespan == pytest.approx(5.0)

    def test_heterogeneous_speeds_closed_form(self):
        """With one divisible kernel the LP equals W / sum(1/d_i)."""
        d = np.array([[1.0], [2.0], [4.0]])
        res = lp_task_allocation(d, [7])
        rate = 1.0 + 0.5 + 0.25
        assert res.makespan == pytest.approx(7.0 / rate)

    def test_multi_kernel_proportional_split(self):
        """When all kernels scale identically per node, the bound equals
        total work over total rate."""
        base = np.array([1.0, 2.0])  # flops-like per kernel
        speeds = np.array([1.0, 3.0])
        d = base[None, :] / speeds[:, None]
        counts = [4, 6]
        res = lp_task_allocation(d, counts)
        total_work = 4 * 1.0 + 6 * 2.0
        assert res.makespan == pytest.approx(total_work / speeds.sum())

    def test_infeasible_kernel_forced_elsewhere(self):
        """A node that cannot run a kernel (inf) receives none of it."""
        d = np.array([[1.0, 1.0], [np.inf, 1.0]])
        res = lp_task_allocation(d, [4, 4])
        assert res.allocation[1, 0] == pytest.approx(0.0, abs=1e-9)

    def test_allocation_sums_to_counts(self):
        d = np.array([[1.0, 3.0], [2.0, 1.0], [4.0, 5.0]])
        counts = [9, 11]
        res = lp_task_allocation(d, counts)
        assert np.allclose(res.allocation.sum(axis=0), counts)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            lp_task_allocation(np.zeros(3), [1])
        with pytest.raises(ValueError):
            lp_task_allocation(np.zeros((2, 2)), [1])
        with pytest.raises(ValueError):
            lp_task_allocation(np.array([[-1.0]]), [1])


class TestLPBoundCalculator:
    @pytest.fixture
    def calc(self):
        cluster = get_scenario("b").build_cluster()
        return LPBoundCalculator(cluster, Workload.from_name("101"))

    def test_fact_bound_decreases_with_nodes(self, calc):
        bounds = [calc.fact(n) for n in range(1, 15)]
        assert all(b <= a + 1e-9 for a, b in zip(bounds, bounds[1:]))
        # Strictly decreasing overall.
        assert bounds[-1] < bounds[0]

    def test_fact_bound_close_to_work_over_rate(self, calc):
        """With GPU-capable nodes, the LP is near total-flops/total-rate
        but not below the trivial bound."""
        n = 8
        lower = calc.fact(n)
        wl = Workload.from_name("101")
        trivial = wl.factorization_total_flops / (
            calc.cluster.total_gflops(n) * 1e9
        )
        assert lower >= trivial * 0.5
        assert lower < trivial * 5

    def test_generation_bound_uses_cpu_only(self, calc):
        wl = Workload.from_name("101")
        n = len(calc.cluster)
        expected = wl.generation_total_flops / (
            calc.cluster.generation_gflops(n) * 1e9
        )
        assert calc.generation(n) == pytest.approx(expected, rel=1e-6)

    def test_iteration_is_max_of_phases(self, calc):
        n = 3
        it = calc.iteration(n)
        assert it == pytest.approx(
            max(calc.fact(n), calc.generation(len(calc.cluster)))
        )

    def test_callable_shorthand(self, calc):
        assert calc(4) == pytest.approx(calc.iteration(4))

    def test_cache_consistency(self, calc):
        assert calc.fact(5) == calc.fact(5)

    def test_allocation_respects_counts(self, calc):
        res = calc.fact_allocation(4)
        from repro.linalg import kernels

        wl = Workload.from_name("101")
        counts = kernels.cholesky_task_counts(wl.t)
        for j, name in enumerate(res.kernels):
            assert res.allocation[:, j].sum() == pytest.approx(counts[name])

    def test_custom_perfmodel(self):
        cluster = get_scenario("b").build_cluster()
        wl = Workload.from_name("101")
        pm = PerfModel(overhead_s=0.0)
        calc = LPBoundCalculator(cluster, wl, perfmodel=pm)
        assert calc.fact(2) > 0
