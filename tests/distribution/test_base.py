"""Tests for distribution helpers: shares, WRR, balance stats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution import (
    integer_shares,
    load_imbalance,
    tile_counts,
    weighted_round_robin,
)

positive_weights = st.lists(
    st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
    min_size=1,
    max_size=20,
)


class TestIntegerShares:
    def test_exact_split(self):
        assert integer_shares([1, 1, 2], 4) == [1, 1, 2]

    def test_sum_preserved(self):
        assert sum(integer_shares([3, 7, 11], 23)) == 23

    @settings(max_examples=100, deadline=None)
    @given(weights=positive_weights, total=st.integers(min_value=1, max_value=500))
    def test_property_sum_and_positivity(self, weights, total):
        shares = integer_shares(weights, total)
        assert sum(shares) == total
        assert all(s >= 0 for s in shares)
        if total >= len(weights):
            assert all(s >= 1 for s in shares)

    def test_every_node_represented(self):
        # A tiny weight still receives one unit when total allows.
        shares = integer_shares([100.0, 0.1], 10)
        assert shares[1] >= 1

    def test_proportionality(self):
        shares = integer_shares([1.0, 3.0], 100)
        assert shares == [25, 75]

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            integer_shares([], 5)
        with pytest.raises(ValueError):
            integer_shares([1.0, -1.0], 5)
        with pytest.raises(ValueError):
            integer_shares([1.0], 0)


class TestWeightedRoundRobin:
    def test_uniform_is_round_robin(self):
        seq = weighted_round_robin([1, 1, 1], 6)
        assert sorted(seq[:3]) == [0, 1, 2]
        assert sorted(seq[3:]) == [0, 1, 2]

    def test_composition_matches_weights(self):
        seq = weighted_round_robin([1, 3], 100)
        assert seq.count(0) == 25
        assert seq.count(1) == 75

    def test_smooth_interleaving(self):
        """The heavy node never waits long: with weights 3:1 node 0 appears
        in every window of 2."""
        seq = weighted_round_robin([3, 1], 40)
        for a, b in zip(seq, seq[1:]):
            assert 0 in (a, b)

    @settings(max_examples=50, deadline=None)
    @given(weights=positive_weights, length=st.integers(min_value=0, max_value=200))
    def test_property_valid_indices(self, weights, length):
        seq = weighted_round_robin(weights, length)
        assert len(seq) == length
        assert all(0 <= s < len(weights) for s in seq)

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            weighted_round_robin([], 3)
        with pytest.raises(ValueError):
            weighted_round_robin([1.0], -1)


class TestBalanceStats:
    def test_tile_counts_cover_lower_triangle(self):
        counts = tile_counts(lambda i, j: 0, t=5)
        assert counts == {0: 15}

    def test_load_imbalance_perfect(self):
        # Two equal nodes, alternating rows: near-perfect balance.
        dist = lambda i, j: i % 2
        imb = load_imbalance(dist, t=8, weights=[1.0, 1.0])
        assert imb == pytest.approx(1.0, rel=0.15)

    def test_load_imbalance_detects_skew(self):
        dist = lambda i, j: 0  # everything on node 0 of 2
        assert load_imbalance(dist, t=6, weights=[1.0, 1.0]) == pytest.approx(2.0)
