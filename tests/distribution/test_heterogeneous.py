"""Tests for the weighted heterogeneous distribution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distribution import (
    factorization_distribution,
    generation_distribution,
    tile_counts,
    weighted_pattern,
    weighted_two_d_cyclic,
)
from repro.platform import get_scenario


class TestWeightedPattern:
    def test_pattern_contains_all_nodes(self):
        pattern = weighted_pattern([5.0, 1.0, 1.0])
        flat = {x for row in pattern for x in row}
        assert flat == {0, 1, 2}

    def test_frequencies_follow_weights(self):
        pattern = weighted_pattern([3.0, 1.0], resolution=8)
        flat = [x for row in pattern for x in row]
        assert flat.count(0) > 2 * flat.count(1)

    def test_resolution_validation(self):
        with pytest.raises(ValueError):
            weighted_pattern([1.0], resolution=0)


class TestWeightedTwoDCyclic:
    def test_valid_node_indices(self):
        dist = weighted_two_d_cyclic([1.0, 2.0, 3.0])
        for j in range(10):
            for i in range(j, 10):
                assert 0 <= dist(i, j) < 3

    def test_heavier_node_owns_more_tiles(self):
        dist = weighted_two_d_cyclic([10.0, 1.0])
        counts = tile_counts(dist, t=20)
        assert counts.get(0, 0) > 3 * counts.get(1, 0)

    def test_deterministic(self):
        d1 = weighted_two_d_cyclic([2.0, 1.0])
        d2 = weighted_two_d_cyclic([2.0, 1.0])
        assert all(
            d1(i, j) == d2(i, j) for j in range(8) for i in range(j, 8)
        )

    def test_changing_n_reshapes_pattern(self):
        """Adding one node changes some existing assignments -- the source
        of the paper's distribution breaks."""
        d2 = weighted_two_d_cyclic([1.0, 1.0])
        d3 = weighted_two_d_cyclic([1.0, 1.0, 1.0])
        changed = sum(
            d2(i, j) != d3(i, j) for j in range(12) for i in range(j, 12)
        )
        assert changed > 0

    @settings(max_examples=30, deadline=None)
    @given(
        weights=st.lists(
            st.floats(min_value=0.5, max_value=50.0), min_size=1, max_size=12
        )
    )
    def test_property_all_weights_valid_owner(self, weights):
        dist = weighted_two_d_cyclic(weights)
        assert 0 <= dist(7, 3) < len(weights)


class TestScenarioDistributions:
    def test_factorization_uses_first_n_nodes_only(self):
        cluster = get_scenario("b").build_cluster()
        dist = factorization_distribution(cluster, 5)
        counts = tile_counts(dist, t=26)
        assert max(counts) < 5

    def test_factorization_weights_favor_gpu_nodes(self):
        cluster = get_scenario("b").build_cluster()  # 2L-6M-6S
        dist = factorization_distribution(cluster, 14)
        counts = tile_counts(dist, t=26)
        # L nodes (indices 0-1, with P100s) own more tiles than S nodes.
        l_avg = (counts.get(0, 0) + counts.get(1, 0)) / 2
        s_avg = sum(counts.get(i, 0) for i in range(8, 14)) / 6
        assert l_avg > s_avg

    def test_generation_weights_are_cpu_based(self):
        """For generation, GPU-heavy nodes get shares close to CPU share."""
        cluster = get_scenario("b").build_cluster()
        dist = generation_distribution(cluster, 14)
        counts = tile_counts(dist, t=26)
        total = sum(counts.values())
        cpu_weights = [n.generation_gflops for n in cluster]
        expected0 = cpu_weights[0] / sum(cpu_weights)
        assert counts.get(0, 0) / total == pytest.approx(expected0, abs=0.06)
