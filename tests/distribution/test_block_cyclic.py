"""Tests for classical block-cyclic distributions."""

import pytest

from repro.distribution import grid_shape, one_d_cyclic, tile_counts, two_d_block_cyclic


class TestGridShape:
    @pytest.mark.parametrize(
        "n,expected", [(1, (1, 1)), (4, (2, 2)), (6, (2, 3)), (12, (3, 4)), (7, (1, 7))]
    )
    def test_most_square(self, n, expected):
        assert grid_shape(n) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            grid_shape(0)


class TestOneDCyclic:
    def test_rows_cycle(self):
        dist = one_d_cyclic(3)
        assert [dist(i, 0) for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_column_independent(self):
        dist = one_d_cyclic(4)
        assert dist(5, 0) == dist(5, 3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            one_d_cyclic(0)


class TestTwoDBlockCyclic:
    def test_all_nodes_used(self):
        dist = two_d_block_cyclic(4)
        counts = tile_counts(dist, t=8)
        assert set(counts) == {0, 1, 2, 3}

    def test_pattern_periodicity(self):
        dist = two_d_block_cyclic(6)  # grid 2x3
        assert dist(0, 0) == dist(2, 3)
        assert dist(1, 2) == dist(3, 5)

    def test_explicit_shape(self):
        dist = two_d_block_cyclic(6, shape=(3, 2))
        assert dist(0, 0) == 0
        assert dist(1, 0) == 2  # row 1 of a 3x2 grid starts at node 2

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            two_d_block_cyclic(6, shape=(2, 2))

    def test_roughly_balanced_on_square_count(self):
        counts = tile_counts(two_d_block_cyclic(4), t=16)
        total = sum(counts.values())
        for c in counts.values():
            assert c >= total / 4 * 0.5  # lower triangle skews, but bounded
