"""CLI tracing flags and the `repro stats` aggregation command.

``repro compare --trace --trace-ticks`` must produce a parseable JSONL
trace (header first, deterministic clock), and ``repro stats`` must
render the committed golden text for it byte-for-byte -- the cold-cache
tick trace is a pure function of the code, so the rendered aggregate is
too.  Regenerate after an intended change::

    REPRO_REGEN_GOLDENS=1 PYTHONPATH=src python -m pytest \
        tests/test_cli_stats.py
"""

import json
import os
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import TRACE_SCHEMA_VERSION, read_trace

GOLDEN = Path(__file__).parent / "goldens" / "stats_compare_b.txt"


@pytest.fixture(autouse=True)
def small(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TILES_101", "8")
    monkeypatch.setenv("REPRO_TILES_128", "8")
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))


@pytest.fixture()
def trace_path(tmp_path, capsys):
    path = tmp_path / "trace.jsonl"
    assert main(["compare", "b", "--reps", "2",
                 "--trace", str(path), "--trace-ticks"]) == 0
    capsys.readouterr()  # drop the compare table
    return path


class TestTraceFlag:
    def test_trace_file_is_parseable_jsonl(self, trace_path):
        records = read_trace(trace_path)
        assert len(records) > 100
        for record in records:
            assert "kind" in record

    def test_header_first_with_deterministic_clock(self, trace_path):
        header = read_trace(trace_path)[0]
        assert header["kind"] == "trace.start"
        assert header["schema"] == TRACE_SCHEMA_VERSION
        assert header["clock"] == "ticks"
        assert header["wall_time"] == 0.0

    def test_trace_carries_all_instrumented_kinds(self, trace_path):
        kinds = {r["kind"] for r in read_trace(trace_path)}
        assert {"trace.start", "simulator.run", "decision", "cell",
                "span", "summary"} <= kinds

    def test_decisions_attribute_cells_and_workers(self, trace_path):
        decisions = [r for r in read_trace(trace_path)
                     if r["kind"] == "decision"]
        assert decisions
        for record in decisions:
            assert record["cell_id"].count("/") == 2
            assert record["worker"]  # stable id under the tick clock


#: Pinned top-level schema of `repro stats --format json`.
JSON_SCHEMA = {
    "schema": int,
    "records": int,
    "clock": str,
    "trace_schema": int,
    "simulations": int,
    "sim_total_s": float,
    "phases": dict,
    "strategies": dict,
    "spans": dict,
    "counters": dict,
    "histograms": dict,
}


class TestStatsJson:
    @pytest.fixture()
    def payload(self, trace_path, capsys):
        assert main(["stats", str(trace_path), "--format", "json"]) == 0
        return json.loads(capsys.readouterr().out)

    def test_schema_is_stable(self, payload):
        assert set(payload) == set(JSON_SCHEMA)
        for key, expected in JSON_SCHEMA.items():
            assert isinstance(payload[key], expected), (key, payload[key])
        assert payload["schema"] == 2
        assert payload["clock"] == "ticks"

    def test_phase_and_strategy_blocks(self, payload):
        assert payload["simulations"] > 0
        for block in payload["phases"].values():
            assert set(block) == {"sims", "total_s", "mean_s"}
        for block in payload["strategies"].values():
            assert set(block) == {"decisions", "cells", "arms",
                                  "mean_overhead", "overhead_p95",
                                  "overhead_p99", "mean_acquisition",
                                  "mean_posterior_sd", "observed_total_s"}
            assert block["arms"] == sorted(block["arms"])
            assert block["overhead_p95"] <= block["overhead_p99"]

    def test_gp_telemetry_surfaced(self, payload):
        gp = [b for name, b in payload["strategies"].items()
              if name.startswith("GP")]
        assert gp, "compare runs include GP strategies"
        assert any(b["mean_posterior_sd"] > 0.0 for b in gp)

    def test_histograms_have_quantiles(self, payload):
        for block in payload["histograms"].values():
            assert {"count", "total", "min", "max", "mean",
                    "p95", "p99"} == set(block)

    def test_json_agrees_with_text_rendering(self, payload, trace_path,
                                             capsys):
        assert main(["stats", str(trace_path)]) == 0
        text = capsys.readouterr().out
        assert f"trace: {payload['records']} records" in text


class TestStatsCommand:
    def test_stats_matches_golden(self, trace_path, capsys):
        assert main(["stats", str(trace_path)]) == 0
        out = capsys.readouterr().out
        if os.environ.get("REPRO_REGEN_GOLDENS"):
            GOLDEN.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN.write_text(out)
            pytest.skip(f"regenerated {GOLDEN}")
        assert GOLDEN.exists(), (
            f"golden missing; run with REPRO_REGEN_GOLDENS=1 to create "
            f"{GOLDEN}"
        )
        assert out == GOLDEN.read_text()

    def test_stats_sections_present(self, trace_path, capsys):
        assert main(["stats", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "per-phase" in out
        assert "per-strategy (decision log)" in out
        assert "overhead/iter [ticks]" in out
        assert "simulator.runs" in out
